#!/usr/bin/env python3
"""CI gate: the flight recorder narrates the whole supervised lifecycle.

Runs one crash-injected supervised sweep with an events journal and
asserts the ``repro.events/1`` contract (docs/observability.md, "Flight
recorder & live ops"):

1. **Journal completeness** — every supervision act counted in the
   merged registry has its matching journal event: spawns ==
   ``worker.spawn`` events, respawns == ``worker.respawn``, hung kills ==
   ``worker.hung-kill``, bisections == ``supervisor.bisect``, and every
   quarantined address in the report appears in exactly one
   ``supervisor.quarantine`` event (and vice versa) — the full
   spawn→crash→respawn→bisect→quarantine replay.
2. **Live console safety** — ``repro status`` must render a journal that
   a sweep is concurrently appending to: every prefix of the journal
   (including ones cut mid-line) snapshots and renders without error.
3. **HTTP surface** — ``GET /metrics`` is byte-identical to
   ``to_prometheus`` over the merged registry; ``/healthz`` answers 200
   for the finished sweep and flips to 503 for a journal whose last
   worker tick is stale (a hung worker); ``/progress`` parses as JSON
   and agrees with the journal snapshot.

Usage::

    PYTHONPATH=src python tools/check_events_journal.py \
        --total 40 --seed 7 --workers 3 --chaos worker-chaos

Exit codes: 0 pass, 1 contract violated, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
import urllib.request


def _http_get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=40)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--chaos", default="worker-chaos")
    parser.add_argument("--chaos-seed", type=int, default=5)
    parser.add_argument("--shard-timeout", type=float, default=3.0)
    parser.add_argument("--max-shard-retries", type=int, default=1)
    args = parser.parse_args(argv)

    from repro.obs import events as ev
    from repro.obs.console import journal_health, journal_snapshot, \
        render_status
    from repro.obs.export import to_prometheus
    from repro.obs.http import ObsServer
    from repro.parallel import (
        SupervisorConfig,
        SweepSpec,
        run_sharded_sweep,
    )

    problems: list[str] = []
    workdir = tempfile.mkdtemp(prefix="repro-events-gate-")
    journal_path = os.path.join(workdir, "sweep.events.jsonl")

    spec = SweepSpec(total=args.total, seed=args.seed, chaos=args.chaos,
                     chaos_seed=args.chaos_seed)
    config = SupervisorConfig(shard_timeout_s=args.shard_timeout,
                              max_shard_retries=args.max_shard_retries)
    result = run_sharded_sweep(spec, workers=args.workers, processes=True,
                               supervise=config, events_path=journal_path)
    print(f"sweep: {len(result.report.analyses)} analyses, "
          f"{len(result.report.failures)} failures, "
          f"{result.respawns} respawns, {result.hung_kills} hung kills, "
          f"{result.poison_contracts} poison contracts")

    # ---- 1. journal completeness vs the merged registry -----------------
    loaded = ev.read_journal(journal_path)
    kinds: dict[str, int] = {}
    for event in loaded.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    print(f"journal: {len(loaded.events)} events "
          f"({loaded.truncated_tail} truncated), kinds: "
          f"{dict(sorted(kinds.items()))}")

    if loaded.header.get("schema") != ev.SCHEMA:
        problems.append(f"journal header schema is "
                        f"{loaded.header.get('schema')!r}")
    if kinds.get(ev.SWEEP_START, 0) != 1 or kinds.get(ev.SWEEP_END, 0) != 1:
        problems.append("journal must record exactly one sweep.start and "
                        "one sweep.end")

    metrics = result.metrics
    for counter_name, kind in (("parallel.respawns", ev.WORKER_RESPAWN),
                               ("parallel.hung_kills", ev.WORKER_HUNG_KILL),
                               ("parallel.bisections", ev.SUPERVISOR_BISECT),
                               ("parallel.poison_contracts",
                                ev.SUPERVISOR_QUARANTINE)):
        counted = int(metrics.counter_value(counter_name))
        journaled = kinds.get(kind, 0)
        if counted != journaled:
            problems.append(f"{counter_name}={counted} in the registry but "
                            f"{journaled} {kind!r} event(s) in the journal")

    if result.respawns + result.hung_kills == 0:
        problems.append(f"fault plan {args.chaos!r} never fired — "
                        f"wrong seed/scale?")

    quarantined_report = {"0x" + address.hex()
                          for address in result.report.failures}
    quarantined_journal = {event.attrs.get("address")
                           for event in loaded.events
                           if event.kind == ev.SUPERVISOR_QUARANTINE}
    if quarantined_report != quarantined_journal:
        problems.append(f"quarantined addresses diverge: report "
                        f"{sorted(quarantined_report)} vs journal "
                        f"{sorted(quarantined_journal)}")

    spawns = kinds.get(ev.WORKER_SPAWN, 0)
    exits = kinds.get(ev.WORKER_EXIT, 0) + kinds.get(ev.WORKER_HUNG_KILL, 0)
    if spawns != exits:
        problems.append(f"{spawns} worker.spawn event(s) but {exits} "
                        f"exit/hung-kill event(s) — a worker's lifecycle "
                        f"is not closed")

    ordered = loaded.ordered()
    if [e.order_key() for e in ordered] != sorted(e.order_key()
                                                  for e in ordered):
        problems.append("total_order() is not sorted by (mono, pid, seq)")

    # ---- 2. status renders against a concurrently-written journal ------
    with open(journal_path, "rb") as stream:
        payload = stream.read()
    header_end = payload.index(b"\n") + 1
    probes = sorted({len(payload), len(payload) // 2,
                     header_end, header_end + 17,
                     len(payload) - 9})
    for cut in probes:
        if cut < header_end:
            continue
        prefix_path = os.path.join(workdir, f"prefix{cut}.events.jsonl")
        with open(prefix_path, "wb") as stream:
            stream.write(payload[:cut])
        try:
            render_status(journal_snapshot(prefix_path))
        except Exception as error:
            problems.append(f"status failed on a {cut}-byte journal prefix "
                            f"(concurrent-writer simulation): {error}")

    # ---- 3. the HTTP surface -------------------------------------------
    with ObsServer(metrics, journal_path=journal_path,
                   hung_after_s=args.shard_timeout * 2) as server:
        status, body = _http_get(server.url + "/metrics")
        expected = to_prometheus(metrics).encode("utf-8")
        if status != 200:
            problems.append(f"/metrics answered {status}")
        elif body != expected:
            problems.append(f"/metrics body diverges from to_prometheus "
                            f"({len(body)} vs {len(expected)} bytes)")
        else:
            print(f"/metrics: byte-identical to the exporter "
                  f"({len(body)} bytes)")

        status, body = _http_get(server.url + "/healthz")
        verdict = json.loads(body)
        if status != 200 or not verdict.get("healthy"):
            problems.append(f"/healthz should be healthy for a finished "
                            f"sweep, got {status}: {verdict}")

        status, body = _http_get(server.url + "/progress")
        payload = json.loads(body)
        progress = payload.get("status") or {}
        if (status != 200 or payload.get("schema") != "repro.query/1"
                or not progress.get("finished")):
            problems.append(f"/progress should report the sweep finished "
                            f"in the repro.query/1 envelope, got {status}: "
                            f"kept keys {sorted(payload)[:6]}")

    # A journal whose last worker tick is stale must flip /healthz to 503
    # — the hung-worker signal an external probe restarts the sweep on.
    hung_path = os.path.join(workdir, "hung.events.jsonl")
    now = time.monotonic()
    journal = ev.EventJournal.create(hung_path)
    recorder = ev.EventRecorder(sinks=(journal,))
    recorder.emit(ev.SWEEP_START, contracts=10, workers=1)
    recorder.emit(ev.WORKER_SPAWN, shard=0, task=0, total=10, depth=0)
    # The last heartbeat was 2 minutes ago: written directly, not via the
    # recorder, so the journal's newest tick really is stale.
    stale = ev.Event(kind=ev.SUPERVISOR_TICK, ts=time.time(),
                     mono=now - 120.0, pid=os.getpid(), seq=99, shard=0,
                     attrs={"task": 0, "completed": 3, "total": 10,
                            "lag_s": 0.0})
    journal.append_record(stale.to_dict())
    journal.close()
    verdict = journal_health(hung_path, hung_after_s=args.shard_timeout)
    if verdict["healthy"]:
        problems.append(f"journal_health() called a 120s-stale worker "
                        f"healthy: {verdict}")
    with ObsServer(metrics, journal_path=hung_path,
                   hung_after_s=args.shard_timeout) as server:
        status, body = _http_get(server.url + "/healthz")
        if status != 503:
            problems.append(f"/healthz should answer 503 for a hung "
                            f"worker, got {status}: {body[:200]!r}")
        else:
            print("/healthz: flips to 503 for a stale worker heartbeat")

    if problems:
        print("events journal gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"events journal gate passed: {len(loaded.events)} events replay "
          f"{spawns} spawns, {result.respawns} respawns, "
          f"{result.hung_kills} hung kills, "
          f"{int(metrics.counter_value('parallel.bisections'))} bisections, "
          f"{result.poison_contracts} quarantines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
