#!/usr/bin/env python3
"""CI gate: the durable store resumes exactly and survives kill -9.

Three phases over one deterministic landscape (docs/persistence.md):

1. **Incremental identity** — sweep the first half of the corpus into a
   store, then re-sweep the *whole* corpus with ``--incremental``: the
   merged report must serialize **byte-identically** to a from-scratch
   sweep, and the pipeline metrics must prove only the delta was
   emulated (``dedup.misses{cache="proxy_check"}`` equals the number of
   codehashes the store had not settled).
2. **Parallel compose** — the same warm-store re-sweep through the
   sharded engine (worker shard stores, parent fold): byte-identical
   again, shard stores cleaned up, store fsck-clean.
3. **Kill -9 chaos** — a subprocess sweeps into a fresh store and is
   SIGKILLed mid-commit; the survivor must open clean, pass ``fsck``,
   and an incremental resume must reach the byte-identical full report.

Usage::

    PYTHONPATH=src python tools/check_store_incremental.py \
        --total 60 --seed 9 --workers 3

Exit codes: 0 pass, 1 contract violated, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time


def _child_sweep(store_path: str, total: int, seed: int) -> int:
    """Subprocess entry: sweep the corpus into ``store_path``."""
    from repro.core.pipeline import Proxion
    from repro.corpus.generator import generate_landscape
    from repro.store import attach_store

    world = generate_landscape(total=total, seed=seed)
    binding = attach_store(store_path)
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset, store=binding)
    proxion.analyze_all(world.addresses())
    binding.close()
    return 0


def _committed_rows(store_path: str) -> int:
    try:
        connection = sqlite3.connect(store_path)
        try:
            return connection.execute(
                "SELECT COUNT(*) FROM analyses").fetchone()[0]
        finally:
            connection.close()
    except sqlite3.Error:
        return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=60)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--kill-after", type=int, default=5, metavar="N",
                        help="SIGKILL the chaos child once N contracts "
                             "are committed (default 5)")
    parser.add_argument("--child-sweep", default=None, metavar="STORE",
                        help=argparse.SUPPRESS)  # internal: phase-3 child
    args = parser.parse_args(argv)

    if args.child_sweep is not None:
        return _child_sweep(args.child_sweep, args.total, args.seed)

    from repro.core.pipeline import Proxion
    from repro.corpus.generator import generate_landscape
    from repro.landscape import report_to_json
    from repro.parallel import SweepSpec, run_sharded_sweep
    from repro.store import AnalysisStore, attach_store, fsck
    from repro.utils.keccak import keccak256

    world = generate_landscape(total=args.total, seed=args.seed)
    addresses = world.addresses()
    problems: list[str] = []

    cold = Proxion.from_chain(world.chain, registry=world.registry,
                              dataset=world.dataset)
    cold_json = report_to_json(cold.analyze_all(addresses))
    print(f"cold sweep: {len(addresses)} addresses, "
          f"{len(cold_json)} report bytes")

    workdir = tempfile.mkdtemp(prefix="repro-store-gate-")

    # ---------------------------------------- phase 1: incremental identity
    store_path = os.path.join(workdir, "phase1.store")
    half = addresses[:len(addresses) // 2]
    with attach_store(store_path) as binding:
        warm = Proxion.from_chain(world.chain, registry=world.registry,
                                  dataset=world.dataset, store=binding)
        warm.analyze_all(half)
    with AnalysisStore(store_path) as store:
        settled = store.settled_code_hashes()
        restored_addresses = set(store.load_analyses())
    expected_misses = len({
        keccak256(world.chain.state.get_code(address))
        for address in addresses
        if address not in restored_addresses
        and world.chain.state.get_code(address)
    } - settled)

    with attach_store(store_path, incremental=True) as binding:
        grown = Proxion.from_chain(world.chain, registry=world.registry,
                                   dataset=world.dataset, store=binding)
        incremental_json = report_to_json(grown.analyze_all(addresses))
        counters = grown.metrics.snapshot()["counters"]

    if incremental_json != cold_json:
        problems.append("incremental re-sweep is NOT byte-identical to "
                        "the from-scratch sweep")
    else:
        print(f"incremental: byte-identical ({len(incremental_json)} bytes)")
    misses = counters.get('dedup.misses{cache="proxy_check"}', 0)
    if misses != expected_misses:
        problems.append(f"incremental sweep emulated {misses} codehashes, "
                        f"expected exactly the {expected_misses} the store "
                        f"had not settled (O(delta) violated)")
    else:
        print(f"delta-only: {misses} codehashes emulated == "
              f"{expected_misses} unsettled")
    restored = counters.get("pipeline.store_restored_contracts", 0)
    if restored != len(restored_addresses):
        problems.append(f"restored {restored} contracts, expected "
                        f"{len(restored_addresses)}")

    # ---------------------------------------- phase 2: parallel compose
    par_store = os.path.join(workdir, "phase2.store")
    spec = SweepSpec(total=args.total, seed=args.seed)
    run_sharded_sweep(spec, workers=args.workers, world=world,
                      processes=False,
                      addresses=half, store_path=par_store)
    result = run_sharded_sweep(spec, workers=args.workers, world=world,
                               processes=False, store_path=par_store,
                               incremental=True)
    parallel_json = report_to_json(result.report)
    if parallel_json != cold_json:
        problems.append("parallel incremental re-sweep is NOT "
                        "byte-identical to the from-scratch sweep")
    else:
        print(f"parallel incremental ({args.workers} shards): "
              f"byte-identical, {result.store_restored} restored")
    leftovers = [name for name in os.listdir(workdir) if ".shard" in name]
    if leftovers:
        problems.append(f"shard stores not folded: {leftovers}")
    verdict = fsck(par_store)
    if not verdict.clean:
        problems.append(f"parallel store fsck not clean: {verdict.issues}")

    # ---------------------------------------- phase 3: kill -9 chaos
    chaos_store = os.path.join(workdir, "phase3.store")
    environment = dict(os.environ)
    environment.setdefault("PYTHONPATH", "src")
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__),
         "--child-sweep", chaos_store,
         "--total", str(args.total), "--seed", str(args.seed)],
        env=environment)
    killed = False
    try:
        deadline = time.monotonic() + 300
        while _committed_rows(chaos_store) < args.kill_after:
            if child.poll() is not None:
                break
            if time.monotonic() > deadline:
                break
            time.sleep(0.01)
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
            killed = True
    finally:
        child.wait()
    if not killed:
        problems.append("chaos child finished before the SIGKILL landed "
                        "(raise --total or lower --kill-after)")
    survivors = _committed_rows(chaos_store)
    print(f"kill -9: child killed with {survivors} contracts committed")

    verdict = fsck(chaos_store)
    if not verdict.ok:
        problems.append(f"post-kill store fails fsck: "
                        f"{verdict.issues or 'fatal'}")
    else:
        print("post-kill fsck: clean")

    with attach_store(chaos_store, incremental=True) as binding:
        resumed = Proxion.from_chain(world.chain, registry=world.registry,
                                     dataset=world.dataset, store=binding)
        resumed_json = report_to_json(resumed.analyze_all(addresses))
    if resumed_json != cold_json:
        problems.append("post-kill incremental resume is NOT "
                        "byte-identical to the from-scratch sweep")
    else:
        print("post-kill resume: byte-identical")

    if problems:
        print("store incremental gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("store incremental gate passed: exact resumes, O(delta) work, "
          "kill -9 survived")
    return 0


if __name__ == "__main__":
    sys.exit(main())
