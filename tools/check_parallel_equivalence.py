#!/usr/bin/env python3
"""CI gate: the sharded sweep must be byte-identical to the serial sweep.

Generates one deterministic landscape, runs ``Proxion.analyze_all``
serially and :func:`repro.parallel.run_sharded_sweep` with N workers over
the same addresses, and compares the fully serialized reports
byte-for-byte.  Under the default ``codehash`` strategy any difference —
ordering, verdicts, dedup counters — is a bug in the sharding or merge
layer and fails the gate.

Usage::

    python tools/check_parallel_equivalence.py --total 250 --workers 4

Exit codes: 0 identical, 1 mismatch, 2 usage error.
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import sys

# Runnable from the repo root without PYTHONPATH.
_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.pipeline import Proxion  # noqa: E402
from repro.corpus.generator import generate_landscape  # noqa: E402
from repro.landscape import report_to_json  # noqa: E402
from repro.parallel import SweepSpec, run_sharded_sweep  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=250,
                        help="landscape scale (default 250)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--strategy", default="codehash",
                        choices=("codehash", "roundrobin"),
                        help="shard strategy under test (roundrobin only "
                             "guarantees contract-level equality, not the "
                             "dedup counters — the gate still requires "
                             "full byte-identity, so use codehash)")
    parser.add_argument("--inline", action="store_true",
                        help="run the shards in-process (no pool) — "
                             "faster, same merge path")
    args = parser.parse_args(argv)
    if args.workers < 2:
        print("error: --workers must be >= 2 to exercise sharding",
              file=sys.stderr)
        return 2

    print(f"generating landscape (total={args.total}, seed={args.seed})...")
    world = generate_landscape(total=args.total, seed=args.seed)
    addresses = world.addresses()

    print(f"serial sweep over {len(addresses)} contracts...")
    serial = Proxion.from_chain(world.chain, registry=world.registry,
                                dataset=world.dataset).analyze_all(addresses)
    serial_json = report_to_json(serial)

    spec = SweepSpec(total=args.total, seed=args.seed)
    result = run_sharded_sweep(spec, workers=args.workers,
                               strategy=args.strategy, world=world,
                               processes=not args.inline, progress=print)
    parallel_json = report_to_json(result.report)

    if parallel_json == serial_json:
        print(f"OK: {args.workers}-worker {args.strategy} sweep is "
              f"byte-identical to the serial sweep "
              f"({len(serial_json)} bytes, "
              f"critical-path speedup "
              f"{result.critical_path_speedup:.2f}x)")
        return 0

    print(f"FAIL: {args.workers}-worker {args.strategy} sweep diverges "
          f"from the serial sweep:", file=sys.stderr)
    diff = difflib.unified_diff(serial_json.splitlines(),
                                parallel_json.splitlines(),
                                fromfile="serial", tofile="parallel",
                                lineterm="", n=2)
    for index, line in enumerate(diff):
        if index >= 40:
            print("  ... (diff truncated)", file=sys.stderr)
            break
        print(f"  {line}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
