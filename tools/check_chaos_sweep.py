#!/usr/bin/env python3
"""CI gate: assert a chaos sweep lost no contracts vs. the fault-free run.

Compares two ``repro survey --json`` payloads — a fault-free baseline and
one produced under ``--chaos <plan>`` — and fails when the chaos run
dropped, quarantined, or altered any contract.  For *transient* fault
plans the resilient RPC layer must absorb every injected fault, so the two
payloads' ``contracts`` arrays must be identical and the chaos run must
quarantine nothing; retries showing up in the metrics snapshot prove the
faults actually fired (see docs/robustness.md).

For *sustained* plans (``--chaos outage``) pass ``--allow-quarantine``:
then the gate only checks conservation — every baseline address must
appear either analyzed or quarantined, i.e. the sweep degraded gracefully
instead of aborting.

For *reorg* plans (``--chaos chain-reorg``) pass ``--allow-reorg`` and run
the chaos sweep with ``--metrics``: an injected reorganization genuinely
removes orphaned-branch deployments from the canonical chain, so baseline
addresses may be missing from the chaos payload — but only when the
metrics snapshot proves a reorg actually fired, nothing may be
quarantined, and every *surviving* record must still match the baseline
byte for byte.

Usage::

    PYTHONPATH=src python -m repro survey --total 50 --seed 3 --json \
        > baseline.json
    PYTHONPATH=src python -m repro survey --total 50 --seed 3 --json \
        --chaos transient --metrics > chaos.json
    python tools/check_chaos_sweep.py baseline.json chaos.json

Exit codes: 0 pass, 1 lost/diverging contracts, 2 usage or unreadable
payloads.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as stream:
            return json.load(stream)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path!r}: {error}", file=sys.stderr)
        raise SystemExit(2)


def _by_address(payload: dict) -> dict[str, dict]:
    return {record["address"]: record
            for record in payload.get("contracts", [])}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="fault-free survey --json payload")
    parser.add_argument("chaos", help="survey --json payload run with --chaos")
    parser.add_argument("--allow-quarantine", action="store_true",
                        help="sustained-outage mode: quarantined records "
                             "count as conserved (graceful degradation), "
                             "but nothing may be silently lost")
    parser.add_argument("--allow-reorg", action="store_true",
                        help="reorg mode: addresses orphaned by an injected "
                             "reorganization may be missing, provided the "
                             "metrics snapshot shows the reorg fired and "
                             "surviving records match the baseline")
    parser.add_argument("--expect-retries", action="store_true",
                        help="additionally require the chaos payload's "
                             "metrics snapshot to show >0 resilience "
                             "retries (proves faults actually fired)")
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    chaos = _load(args.chaos)
    base_contracts = _by_address(baseline)
    chaos_contracts = _by_address(chaos)
    chaos_failures = {record["address"]
                      for record in chaos.get("failures", [])}

    problems: list[str] = []

    lost = [address for address in base_contracts
            if address not in chaos_contracts
            and address not in chaos_failures]
    if lost and not args.allow_reorg:
        problems.append(f"{len(lost)} contract(s) silently lost under "
                        f"chaos (first: {lost[0]})")

    if args.allow_reorg:
        counters = chaos.get("metrics", {}).get("counters", {})
        reorgs = sum(value for key, value in counters.items()
                     if key.startswith("faults.injected")
                     and 'kind="reorg"' in key)
        if reorgs <= 0:
            problems.append("no faults.injected{kind=reorg} recorded — "
                            "missing contracts cannot be blamed on a "
                            "reorganization that never fired")
        if chaos_failures:
            problems.append(f"{len(chaos_failures)} contract(s) quarantined "
                            f"under the reorg plan — a reorg removes "
                            f"contracts, it must not wound survivors")
        diverged = [address for address, record in base_contracts.items()
                    if address in chaos_contracts
                    and chaos_contracts[address] != record]
        if diverged:
            problems.append(f"{len(diverged)} surviving record(s) differ "
                            f"from the fault-free baseline "
                            f"(first: {diverged[0]})")
        print(f"reorg conservation: {len(chaos_contracts)} surviving "
              f"records identical, {len(lost)} orphaned by "
              f"{int(reorgs)} injected reorg(s) "
              f"(baseline {len(base_contracts)})")
    elif args.allow_quarantine:
        print(f"conservation: {len(chaos_contracts)} analyzed + "
              f"{len(chaos_failures)} quarantined "
              f"(baseline {len(base_contracts)})")
    else:
        if chaos_failures:
            problems.append(f"{len(chaos_failures)} contract(s) quarantined "
                            f"under a transient plan — the resilient layer "
                            f"should have absorbed every fault")
        diverged = [address for address, record in base_contracts.items()
                    if chaos_contracts.get(address) != record]
        if diverged:
            problems.append(f"{len(diverged)} contract record(s) differ "
                            f"from the fault-free baseline "
                            f"(first: {diverged[0]})")
        extra = [address for address in chaos_contracts
                 if address not in base_contracts]
        if extra:
            problems.append(f"{len(extra)} unexpected extra contract(s) "
                            f"in the chaos payload (first: {extra[0]})")

    if args.expect_retries:
        counters = chaos.get("metrics", {}).get("counters", {})
        retries = sum(value for key, value in counters.items()
                      if key.startswith("resilience.retries"))
        if retries <= 0:
            problems.append("no resilience.retries recorded — the fault "
                            "plan did not fire (wrong seed/plan?)")
        else:
            print(f"retries observed: {int(retries)}")

    if problems:
        print("chaos sweep gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("chaos sweep gate passed: no contracts lost")
    return 0


if __name__ == "__main__":
    sys.exit(main())
