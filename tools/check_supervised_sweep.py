#!/usr/bin/env python3
"""CI gate: the sweep supervisor loses nothing and changes nothing.

Runs three sweeps over the same deterministic landscape and asserts the
supervisor's contract (docs/robustness.md, "Supervision & self-healing"):

1. **serial** — ``Proxion.analyze_all`` in-process, the ground truth;
2. **supervised, crash-free** — the multi-process supervisor with no
   fault plan; its merged report must serialize **byte-identically** to
   the serial one (supervision is babysitting, never a different answer);
3. **supervised, under crash injection** — a ``worker-*`` fault plan
   kills/wedges workers mid-shard; the sweep must still complete with
   **zero lost contracts**: every address is either analyzed (and its
   record byte-equal to the serial one) or explicitly quarantined as a
   cause-classified ``worker-crash`` failure.  The supervision counters
   must show the faults actually fired (respawns or hung kills > 0).

Usage::

    PYTHONPATH=src python tools/check_supervised_sweep.py \
        --total 40 --seed 7 --workers 3 --chaos worker-chaos

Exit codes: 0 pass, 1 contract violated, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=40)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--chaos", default="worker-chaos",
                        help="process-level fault plan for run 3 "
                             "(default: worker-chaos)")
    parser.add_argument("--chaos-seed", type=int, default=5)
    parser.add_argument("--shard-timeout", type=float, default=3.0)
    parser.add_argument("--max-shard-retries", type=int, default=1)
    args = parser.parse_args(argv)

    from repro.core.pipeline import Proxion
    from repro.landscape import report_to_json
    from repro.parallel import (
        SupervisorConfig,
        SweepSpec,
        run_sharded_sweep,
    )

    spec = SweepSpec(total=args.total, seed=args.seed)
    world = spec.build_world()
    config = SupervisorConfig(shard_timeout_s=args.shard_timeout,
                              max_shard_retries=args.max_shard_retries)
    problems: list[str] = []

    serial_proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                        dataset=world.dataset)
    serial_json = report_to_json(
        serial_proxion.analyze_all(world.addresses()))
    serial = json.loads(serial_json)
    print(f"serial: {len(serial['contracts'])} contracts, "
          f"{len(serial['failures'])} failures")

    clean = run_sharded_sweep(spec, workers=args.workers, world=world,
                              processes=True, supervise=config)
    clean_json = report_to_json(clean.report)
    if clean_json != serial_json:
        problems.append("crash-free supervised merge is NOT byte-identical "
                        "to the serial sweep")
    else:
        print(f"crash-free supervised: byte-identical "
              f"({len(clean_json)} bytes)")

    chaotic_spec = SweepSpec(total=args.total, seed=args.seed,
                             chaos=args.chaos, chaos_seed=args.chaos_seed)
    chaotic = run_sharded_sweep(chaotic_spec, workers=args.workers,
                                world=world, processes=True,
                                supervise=config)
    merged = json.loads(report_to_json(chaotic.report))
    print(f"chaos ({args.chaos}): {chaotic.respawns} respawns, "
          f"{chaotic.hung_kills} hung kills, "
          f"{chaotic.poison_contracts} poison contracts quarantined")

    if chaotic.respawns + chaotic.hung_kills == 0:
        problems.append(f"fault plan {args.chaos!r} never fired "
                        f"(no respawns or hung kills) — wrong seed/scale?")

    serial_by_addr = {record["address"]: record
                      for record in serial["contracts"]}
    quarantined = {record["address"] for record in merged["failures"]}
    analyzed = {record["address"] for record in merged["contracts"]}

    lost = [address for address in serial_by_addr
            if address not in analyzed and address not in quarantined]
    if lost:
        problems.append(f"{len(lost)} contract(s) silently lost under "
                        f"crash injection (first: {lost[0]})")

    diverged = [record["address"] for record in merged["contracts"]
                if serial_by_addr.get(record["address"]) != record]
    if diverged:
        problems.append(f"{len(diverged)} analyzed record(s) differ from "
                        f"the serial sweep (first: {diverged[0]})")

    misclassified = [record["address"] for record in merged["failures"]
                     if record.get("cause") != "worker-crash"
                     or record.get("stage") != "worker"]
    if misclassified:
        problems.append(f"{len(misclassified)} quarantined record(s) not "
                        f"classified worker-crash/worker "
                        f"(first: {misclassified[0]})")

    if len(quarantined) != chaotic.poison_contracts:
        problems.append(f"quarantine accounting mismatch: "
                        f"{len(quarantined)} failures in the report vs "
                        f"{chaotic.poison_contracts} poison contracts "
                        f"counted by the supervisor")

    if problems:
        print("supervised sweep gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"supervised sweep gate passed: "
          f"{len(analyzed)} analyzed + {len(quarantined)} quarantined, "
          f"zero lost")
    return 0


if __name__ == "__main__":
    sys.exit(main())
