"""Install the offline ``wheel`` shim into the active site-packages.

Run once in environments that have setuptools but no network access and no
``wheel`` distribution (which breaks ``pip install -e .``):

    python tools/install_wheel_shim.py

The shim registers the ``bdist_wheel`` distutils command via entry points
and provides ``wheel.wheelfile.WheelFile``, which is everything setuptools'
PEP 660 editable build path needs.  If a real ``wheel`` package is already
importable, this script does nothing.
"""

from __future__ import annotations

import os
import shutil
import site
import sys

SHIM_VERSION = "0.42.0+shim"


def main() -> int:
    try:
        import wheel  # noqa: F401
        print("a 'wheel' package is already installed; nothing to do")
        return 0
    except ImportError:
        pass

    site_packages = site.getsitepackages()[0]
    here = os.path.dirname(os.path.abspath(__file__))
    source = os.path.join(here, "wheel_shim", "wheel")
    target = os.path.join(site_packages, "wheel")
    shutil.copytree(source, target, dirs_exist_ok=True)

    # Register the bdist_wheel command entry point so setuptools'
    # get_command_class() can resolve it.
    dist_info = os.path.join(site_packages, "wheel-0.42.0.dist-info")
    os.makedirs(dist_info, exist_ok=True)
    with open(os.path.join(dist_info, "METADATA"), "w", encoding="utf-8") as f:
        f.write(
            "Metadata-Version: 2.1\n"
            "Name: wheel\n"
            f"Version: {SHIM_VERSION.replace('+shim', '')}\n"
            "Summary: Offline shim providing the bdist_wheel command\n"
        )
    with open(os.path.join(dist_info, "entry_points.txt"), "w",
              encoding="utf-8") as f:
        f.write("[distutils.commands]\n"
                "bdist_wheel = wheel.bdist_wheel:bdist_wheel\n")
    with open(os.path.join(dist_info, "RECORD"), "w", encoding="utf-8") as f:
        f.write("")
    with open(os.path.join(dist_info, "INSTALLER"), "w", encoding="utf-8") as f:
        f.write("wheel-shim\n")

    print(f"installed wheel shim into {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
