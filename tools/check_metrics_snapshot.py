#!/usr/bin/env python3
"""CI gate: validate a ``survey --json --metrics`` metrics snapshot.

Reads the JSON sweep from a file argument (or stdin) and fails — exit 1
with a per-key report — unless the embedded ``metrics`` snapshot contains
the series the observability layer promises: RPC accounting, pipeline
spans, §6.1 dedup counters, and the logic-recovery numerator/denominator.

Usage::

    PYTHONPATH=src python -m repro survey --total 50 --json --metrics > sweep.json
    python tools/check_metrics_snapshot.py sweep.json
"""

from __future__ import annotations

import json
import sys

#: Counter series every instrumented sweep must produce.
REQUIRED_COUNTERS = (
    'rpc.calls{method="eth_getCode"}',
    'rpc.calls{method="eth_getStorageAt"}',
    'dedup.hits{cache="proxy_check"}',
    'dedup.misses{cache="proxy_check"}',
    'dedup.misses{cache="function_collision"}',
    'dedup.misses{cache="storage_collision"}',
    "logic_recovery.getstorageat_calls",
    "logic_recovery.storage_proxies",
)

#: Histogram series every instrumented sweep must produce.
REQUIRED_HISTOGRAMS = (
    'rpc.latency_seconds{method="eth_getCode"}',
    'rpc.latency_seconds{method="eth_getStorageAt"}',
    'span.seconds{name="sweep"}',
    'span.seconds{name="proxy_check"}',
    'span.seconds{name="logic_history"}',
)


def check(payload: dict) -> list[str]:
    """All problems found in one sweep payload (empty = pass)."""
    problems: list[str] = []
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return ["payload has no 'metrics' object — "
                "was survey run with --json --metrics?"]

    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    for key in REQUIRED_COUNTERS:
        if key not in counters:
            problems.append(f"missing counter: {key}")
    for key in REQUIRED_HISTOGRAMS:
        if key not in histograms:
            problems.append(f"missing histogram: {key}")
    if problems:
        return problems

    # Sanity relations between the series (not just presence).
    if counters['rpc.calls{method="eth_getCode"}'] <= 0:
        problems.append("eth_getCode was never called")
    storage_calls = counters['rpc.calls{method="eth_getStorageAt"}']
    recovery = counters["logic_recovery.getstorageat_calls"]
    if not 0 < recovery <= storage_calls:
        problems.append(
            f"logic_recovery.getstorageat_calls={recovery} not within "
            f"(0, rpc eth_getStorageAt={storage_calls}]")
    if counters["logic_recovery.storage_proxies"] <= 0:
        problems.append("no storage proxies recovered — the §6.1 headline "
                        "would be undefined")
    sweep = histograms['span.seconds{name="sweep"}']
    if sweep.get("count") != 1:
        problems.append(f"expected exactly one sweep span, "
                        f"got {sweep.get('count')}")
    dedup_total = (counters['dedup.hits{cache="proxy_check"}']
                   + counters['dedup.misses{cache="proxy_check"}'])
    contracts = payload.get("summary", {}).get("contracts")
    if contracts is not None and dedup_total != contracts:
        problems.append(f"proxy_check dedup hits+misses={dedup_total} != "
                        f"analyzed contracts={contracts}")
    return problems


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        with open(argv[1], encoding="utf-8") as stream:
            payload = json.load(stream)
    else:
        payload = json.load(sys.stdin)
    problems = check(payload)
    if problems:
        print("metrics snapshot check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    counters = payload["metrics"]["counters"]
    per_proxy = (counters["logic_recovery.getstorageat_calls"]
                 / counters["logic_recovery.storage_proxies"])
    print(f"metrics snapshot OK — "
          f"{len(REQUIRED_COUNTERS)} counters + "
          f"{len(REQUIRED_HISTOGRAMS)} histograms present; "
          f"getStorageAt/proxy = {per_proxy:.1f}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
