#!/usr/bin/env python3
"""CI gate: chain reorgs and endpoint outages never corrupt or lose facts.

Two legs, mirroring ``docs/robustness.md``'s failure model:

1. **Reorg leg** — a monitor follows a chain into a depth-k
   reorganization (the top k block records are orphaned and replaced by
   a winning branch).  Afterwards:

   * ``repro store fsck`` passes — the rollback left no dangling rows;
   * no orphaned-branch deployment keeps an instance fact in the store;
   * every ``GET /v1/contract/ADDR`` answer over the survived store is
     byte-identical to the same query over a store produced by a fresh
     from-genesis sweep of the final canonical chain — surviving a reorg
     and never having seen one are indistinguishable.

2. **Failover leg** — a full sweep runs against a two-endpoint fleet
   whose primary enters a sustained outage mid-sweep (the canned
   ``outage`` plan).  The sweep must finish with **zero lost contracts**
   (same analysis count as an undisturbed reference sweep) and at least
   one recorded failover switch.

Usage::

    PYTHONPATH=src python tools/check_reorg.py --total 40 --seed 5 --depth 3

Exit codes: 0 pass, 1 contract violated, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from http.client import HTTPConnection


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=40)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--depth", type=int, default=3,
                        help="blocks the injected reorg orphans (default 3)")
    parser.add_argument("--extra-pairs", type=int, default=3,
                        help="wallet+proxy pairs deployed on the doomed "
                             "branch (default 3)")
    args = parser.parse_args(argv)

    from repro.chain.failover import build_failover_node
    from repro.cli import main as repro_main
    from repro.core.monitor import DeploymentMonitor
    from repro.core.pipeline import Proxion
    from repro.corpus.generator import generate_landscape
    from repro.lang import compile_contract, stdlib
    from repro.serve import ServeApp, ServeConfig
    from repro.store import attach_store
    from repro.store.store import AnalysisStore

    problems: list[str] = []
    workdir = tempfile.mkdtemp(prefix="repro-reorg-gate-")
    survived_path = os.path.join(workdir, "survived.store")
    fresh_path = os.path.join(workdir, "fresh.store")

    doomed_deployer = bytes.fromhex("d00d" + "00" * 17 + "01")
    winner_deployer = bytes.fromhex("f1f1" + "00" * 17 + "02")

    def deploy_pairs(chain, deployer: bytes, tag: str, pairs: int) -> int:
        for index in range(pairs):
            wallet = chain.deploy(deployer, compile_contract(
                stdlib.simple_wallet(f"{tag}W{index}", deployer)).init_code)
            assert wallet.success
            proxy = chain.deploy(deployer, compile_contract(
                stdlib.storage_proxy(f"{tag}P{index}",
                                     wallet.created_address,
                                     deployer)).init_code)
            assert proxy.success
        return 2 * pairs

    # ---- leg 1: follow a chain through a depth-k reorg -----------------
    world = generate_landscape(total=args.total, seed=args.seed)
    chain = world.chain
    chain.fund(doomed_deployer, 10 ** 21)
    chain.fund(winner_deployer, 10 ** 21)

    with attach_store(survived_path) as binding:
        proxion = Proxion(world.node, registry=world.registry,
                          dataset=world.dataset, store=binding)
        binding.bind_metrics(proxion.metrics)
        monitor = DeploymentMonitor(proxion)
        monitor.poll()                      # settle the landscape's history
        settled = monitor.stats.contracts_seen
        print(f"seed: followed {settled} contracts into {survived_path}")

        deploy_pairs(chain, doomed_deployer, "Doom", args.extra_pairs)
        monitor.poll()
        orphaned = chain.fork(args.depth)   # the injected reorg
        if len(orphaned) != args.depth:
            problems.append(f"fork({args.depth}) orphaned {len(orphaned)} "
                            f"deployments, expected {args.depth} "
                            f"(one deploy per block)")
        deploy_pairs(chain, winner_deployer, "Win", args.extra_pairs)
        alerts = monitor.poll()
        if not any(alert.kind == "reorg" for alert in alerts):
            problems.append("monitor.poll() after the fork raised no "
                            "reorg alert")
        if monitor.stats.reorgs != 1:
            problems.append(f"monitor counted {monitor.stats.reorgs} "
                            f"reorgs, expected 1")
        invalidated = proxion.metrics.counter_total(
            "store.reorg_invalidations")
        print(f"reorg: depth {args.depth} orphaned {len(orphaned)} "
              f"deployment(s), {invalidated} store fact(s) invalidated")

    # fsck: the rollback must leave a consistent store behind.
    if repro_main(["store", "fsck", survived_path]) != 0:
        problems.append("store fsck failed on the reorg-survived store")

    # No orphaned-branch instance fact may remain.
    with AnalysisStore(survived_path) as reader:
        for address in orphaned:
            if reader.load_analysis_record(address) is not None:
                problems.append(f"orphaned 0x{address.hex()} still has an "
                                f"instance fact after the reorg")
        survived_count = reader.contract_count()

    # Fresh from-genesis sweep of the *final* canonical chain.
    with attach_store(fresh_path) as fresh_binding:
        fresh_proxion = Proxion.from_node(
            build_failover_node(world.node, 1),  # plain single endpoint
            registry=world.registry, dataset=world.dataset,
            store=fresh_binding)
        DeploymentMonitor(fresh_proxion).poll()
    with AnalysisStore(fresh_path) as reader:
        fresh_count = reader.contract_count()
    if survived_count != fresh_count:
        problems.append(f"survived store settles {survived_count} "
                        f"contracts, a fresh sweep of the final chain "
                        f"settles {fresh_count}")

    # Byte-identity: serving the survived store answers exactly like
    # serving the fresh one, for every canonical contract.
    with AnalysisStore(fresh_path) as reader:
        addresses = sorted(rendered for rendered, in
                           reader._connection.execute(
                               "SELECT address FROM analyses"))

    def serve_answers(path: str) -> dict[str, bytes]:
        config = ServeConfig(store_path=path, total=args.total,
                             seed=args.seed, rate_per_s=1e9, burst=10 ** 6)
        answers: dict[str, bytes] = {}
        with ServeApp(config, landscape=world) as app:
            connection = HTTPConnection("127.0.0.1", app.port, timeout=30)
            for rendered in addresses:
                connection.request("GET", f"/v1/contract/{rendered}")
                response = connection.getresponse()
                body = response.read()
                if response.status != 200:
                    problems.append(f"GET /v1/contract/{rendered} on "
                                    f"{path} -> {response.status}")
                answers[rendered] = body
            connection.close()
        return answers

    survived_answers = serve_answers(survived_path)
    fresh_answers = serve_answers(fresh_path)
    diverging = [rendered for rendered in addresses
                 if survived_answers[rendered] != fresh_answers[rendered]]
    for rendered in diverging[:5]:
        problems.append(f"{rendered}: survived-store answer diverges from "
                        f"the fresh-sweep answer")
    print(f"byte-identity: {len(addresses) - len(diverging)}/"
          f"{len(addresses)} served answers identical to a fresh sweep "
          f"of the final canonical chain")

    # ---- leg 2: mid-sweep primary outage loses zero contracts ----------
    outage_world = generate_landscape(total=args.total, seed=args.seed)
    fleet = build_failover_node(outage_world.node, 2, chaos="outage")
    report = Proxion.from_node(fleet, registry=outage_world.registry,
                               dataset=outage_world.dataset).analyze_all()
    reference_world = generate_landscape(total=args.total, seed=args.seed)
    reference = Proxion(reference_world.node,
                        registry=reference_world.registry,
                        dataset=reference_world.dataset).analyze_all()
    switches = fleet.metrics.counter_total("chain.failover_switches")
    lost = len(reference.analyses) - len(report.analyses)
    print(f"failover: sweep under a mid-sweep primary outage analyzed "
          f"{len(report.analyses)}/{len(reference.analyses)} contracts "
          f"({switches} endpoint switch(es))")
    if lost != 0:
        problems.append(f"primary outage lost {lost} contract(s); the "
                        f"failover leg requires zero")
    if switches < 1:
        problems.append("the outage never caused a failover switch — the "
                        "fleet was not exercised")
    if set(report.analyses) != set(reference.analyses):
        problems.append("outage sweep analyzed a different contract set "
                        "than the reference sweep")

    if problems:
        print("reorg gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"reorg gate passed: fsck clean, {len(orphaned)} orphaned "
          f"deployments scrubbed, {len(addresses)} byte-identical served "
          f"answers, zero contracts lost through the outage")
    return 0


if __name__ == "__main__":
    sys.exit(main())
