"""The ``bdist_wheel`` distutils command surface setuptools expects.

Only the pieces exercised by editable installs are implemented:
``get_tag``, ``write_wheelfile``, ``egg2dist`` and ``wheel_dist_name``.
A full from-source wheel build (``run``) handles the pure-Python case.
"""

from __future__ import annotations

import os
import re
import shutil

from distutils import log
from distutils.core import Command

from wheel import __version__ as wheel_version


def safer_name(name: str) -> str:
    return re.sub(r"[^\w\d.]+", "_", name, flags=re.UNICODE)


def safer_version(version: str) -> str:
    return safer_name(str(version))


class bdist_wheel(Command):

    description = "create a wheel distribution (offline shim)"

    user_options = [
        ("bdist-dir=", "b", "temporary directory for creating the distribution"),
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("keep-temp", "k", "keep the pseudo-installation tree"),
        ("universal", None, "make a universal wheel"),
        ("compression=", None, "zipfile compression"),
        ("python-tag=", None, "Python implementation compatibility tag"),
        ("build-number=", None, "build number"),
        ("plat-name=", "p", "platform name"),
        ("py-limited-api=", None, "Python abi3 tag"),
        ("owner=", "u", "owner"),
        ("group=", "g", "group"),
        ("relative", None, "build relative"),
        ("skip-build", None, "skip rebuilding everything"),
    ]

    boolean_options = ["keep-temp", "universal", "relative", "skip-build"]

    def initialize_options(self) -> None:
        self.bdist_dir = None
        self.dist_dir = None
        self.keep_temp = False
        self.universal = False
        self.compression = "deflated"
        self.python_tag = "py3"
        self.build_number = None
        self.plat_name = None
        self.py_limited_api = False
        self.owner = None
        self.group = None
        self.relative = False
        self.skip_build = False
        self.data_dir = None

    def finalize_options(self) -> None:
        if self.dist_dir is None:
            self.dist_dir = "dist"
        self.data_dir = self.wheel_dist_name + ".data"

    # ------------------------------------------------------------- metadata
    @property
    def wheel_dist_name(self) -> str:
        components = [
            safer_name(self.distribution.get_name()),
            safer_version(self.distribution.get_version()),
        ]
        if self.build_number:
            components.append(self.build_number)
        return "-".join(components)

    def get_tag(self) -> tuple[str, str, str]:
        # The reproduction library is pure Python.
        return (self.python_tag, "none", "any")

    def write_wheelfile(self, wheelfile_base: str,
                        generator: str | None = None) -> None:
        generator = generator or f"wheel-shim ({wheel_version})"
        tag = "-".join(self.get_tag())
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: {generator}\n"
            "Root-Is-Purelib: true\n"
            f"Tag: {tag}\n"
        )
        path = os.path.join(wheelfile_base, "WHEEL")
        log.info("creating %s", path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)

    def egg2dist(self, egginfo_path: str, distinfo_path: str) -> None:
        """Convert an .egg-info directory into a .dist-info directory."""
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)

        pkginfo = os.path.join(egginfo_path, "PKG-INFO")
        if os.path.exists(pkginfo):
            shutil.copy(pkginfo, os.path.join(distinfo_path, "METADATA"))
        for extra in ("entry_points.txt", "top_level.txt"):
            source = os.path.join(egginfo_path, extra)
            if os.path.exists(source):
                shutil.copy(source, os.path.join(distinfo_path, extra))
        # Mirror the real bdist_wheel: the egg-info dir is consumed.
        shutil.rmtree(egginfo_path)

    # ------------------------------------------------------------ full build
    def run(self) -> None:
        from wheel.wheelfile import WheelFile

        build_scripts = self.reinitialize_command("build")
        build_scripts.build_lib = None
        self.run_command("build")
        build_cmd = self.get_finalized_command("build")
        libdir = build_cmd.build_lib

        egg_info_cmd = self.get_finalized_command("egg_info")
        egg_info_cmd.run()
        egginfo_dir = egg_info_cmd.egg_info

        distinfo_dirname = (
            f"{safer_name(self.distribution.get_name())}-"
            f"{safer_version(self.distribution.get_version())}.dist-info")
        distinfo_dir = os.path.join(libdir, distinfo_dirname)
        self.egg2dist(egginfo_dir, distinfo_dir)
        self.write_wheelfile(distinfo_dir)

        os.makedirs(self.dist_dir, exist_ok=True)
        wheel_path = os.path.join(
            self.dist_dir,
            f"{self.wheel_dist_name}-{'-'.join(self.get_tag())}.whl")
        with WheelFile(wheel_path, "w") as archive:
            for root, _dirs, files in os.walk(libdir):
                for name in sorted(files):
                    path = os.path.join(root, name)
                    archive.write(path, os.path.relpath(path, libdir))
        log.info("created %s", wheel_path)
