"""WheelFile: a ZipFile that maintains the wheel RECORD manifest."""

from __future__ import annotations

import base64
import hashlib
import os
import re
import zipfile

_DIST_INFO_RE = re.compile(
    r"^(?P<namever>(?P<name>[^-]+)-(?P<ver>[^-]+))(-(?P<build>\d[^-]*))?"
    r"-(?P<pyver>[^-]+)-(?P<abi>[^-]+)-(?P<plat>[^-]+)\.whl$"
)


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """Write-mode wheel archive that appends a correct RECORD on close."""

    def __init__(self, file, mode: str = "r",
                 compression: int = zipfile.ZIP_DEFLATED) -> None:
        basename = os.path.basename(str(file))
        match = _DIST_INFO_RE.match(basename)
        if match:
            self.dist_info_path = (
                f"{match.group('name')}-{match.group('ver')}.dist-info")
        else:
            self.dist_info_path = "unknown-0.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._record_entries: list[tuple[str, str, int]] = []
        super().__init__(file, mode, compression=compression)

    # -- recording writers --------------------------------------------------
    def writestr(self, zinfo_or_arcname, data, *args, **kwargs) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        arcname = (zinfo_or_arcname.filename
                   if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
                   else zinfo_or_arcname)
        self._record_entries.append((arcname, _record_hash(data), len(data)))

    def write(self, filename, arcname=None, *args, **kwargs) -> None:
        super().write(filename, arcname, *args, **kwargs)
        with open(filename, "rb") as handle:
            data = handle.read()
        self._record_entries.append(
            (str(arcname or filename), _record_hash(data), len(data)))

    def write_files(self, base_dir) -> None:
        """Recursively add every file under ``base_dir`` to the archive."""
        base_dir = str(base_dir)
        deferred: list[tuple[str, str]] = []
        for root, _dirs, files in os.walk(base_dir):
            for name in sorted(files):
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                if arcname == self.record_path:
                    continue
                if arcname.startswith(self.dist_info_path + "/"):
                    deferred.append((path, arcname))
                else:
                    self.write(path, arcname)
        # dist-info entries conventionally come last in the archive.
        for path, arcname in deferred:
            self.write(path, arcname)

    def close(self) -> None:
        if self.mode == "w" and self._record_entries:
            lines = [f"{name},{digest},{size}"
                     for name, digest, size in self._record_entries]
            lines.append(f"{self.record_path},,")
            payload = ("\n".join(lines) + "\n").encode("utf-8")
            super().writestr(self.record_path, payload)
            self._record_entries.clear()
        super().close()
