"""Minimal offline stand-in for the PyPA ``wheel`` package.

This environment has setuptools but no network and no ``wheel``
distribution, which breaks ``pip install -e .`` (setuptools' PEP 660
editable build imports ``wheel.wheelfile`` and dispatches to the
``bdist_wheel`` command).  This shim implements exactly the surface
setuptools 65 touches: :class:`wheel.wheelfile.WheelFile` and a
``bdist_wheel`` command with ``get_tag``/``write_wheelfile``/``egg2dist``.

Install with ``python tools/install_wheel_shim.py`` (done once per
environment); it is not part of the reproduction library itself.
"""

__version__ = "0.42.0+shim"
