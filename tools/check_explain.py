#!/usr/bin/env python3
"""CI gate: every verdict an audited sweep emits carries its evidence.

Runs one audited supervised sweep (``survey --audit`` machinery) and
asserts the ``repro.evidence/1`` contract (docs/observability.md,
"Verdict provenance & explain"):

1. **Coverage** — every analyzed contract has an evidence file in the
   audit directory, and every file's digest matches the digest embedded
   in the serialized analysis (checkpoint/merge provenance).
2. **Verdict completeness** — every proxy verdict cites a matched
   pattern (or the dedup-cache transfer that replaced classification);
   every recovered logic history with getStorageAt spend cites its
   Algorithm 1 search steps; every function/storage collision cites the
   selector/slot observations behind it.
3. **Explain surface** — ``repro explain ADDR --audit DIR`` renders a
   narrative for every audited address and exits 0; ``--json`` output
   parses and round-trips through ``EvidenceTrail.from_dict``.
4. **Default-path hygiene** — the same sweep without ``--audit``
   produces a report with no ``evidence`` keys and byte-identical
   verdicts.

Usage::

    PYTHONPATH=src python tools/check_explain.py --total 40 --seed 7 \
        --workers 2

Exit codes: 0 pass, 1 contract violated, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=40)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.cli import main as repro_main
    from repro.landscape.serialize import report_to_dict
    from repro.obs.provenance import (
        AuditDir,
        DEDUP_HIT,
        FUNCTION_COLLISION,
        LOGIC_HISTORY,
        PROXY_PATTERN,
        SEARCH_STEP,
        STORAGE_COLLISION,
        EvidenceTrail,
    )
    from repro.parallel import SweepSpec, run_sharded_sweep

    problems: list[str] = []
    workdir = tempfile.mkdtemp(prefix="repro-explain-gate-")
    audit_path = os.path.join(workdir, "audit")

    spec = SweepSpec(total=args.total, seed=args.seed)
    audited = run_sharded_sweep(spec, workers=args.workers, processes=True,
                                audit_dir=audit_path)
    report = audited.report
    audit = AuditDir(audit_path)
    print(f"sweep: {len(report.analyses)} analyses audited into "
          f"{len(audit.addresses())} evidence files")

    # ---- 1. coverage: one evidence file + matching digest per analysis --
    recorded = set(audit.addresses())
    missing = [a for a in report.analyses if a not in recorded]
    if missing:
        problems.append(f"{len(missing)} analyses have no evidence file, "
                        f"first 0x{missing[0].hex()}")
    trails = {}
    for address, analysis in report.analyses.items():
        if address not in recorded:
            continue
        trail = trails[address] = audit.read(address)
        if analysis.evidence_digest != trail.digest():
            problems.append(f"0x{address.hex()}: embedded digest diverges "
                            f"from the evidence file")

    def kinds_of(address):
        return {node.kind for section in trails[address].sections
                for node in section.walk()}

    # ---- 2. verdict completeness ----------------------------------------
    proxies = pattern_cited = 0
    for analysis in report.proxies():
        proxies += 1
        kinds = kinds_of(analysis.address)
        if PROXY_PATTERN in kinds or DEDUP_HIT in kinds:
            pattern_cited += 1
        else:
            problems.append(f"proxy 0x{analysis.address.hex()} cites no "
                            f"matched pattern or dedup transfer")
    searched = steps_cited = 0
    for analysis in report.analyses.values():
        history = analysis.logic_history
        if history is None or history.api_calls_used == 0:
            continue
        searched += 1
        kinds = kinds_of(analysis.address)
        if SEARCH_STEP in kinds and LOGIC_HISTORY in kinds:
            steps_cited += 1
        else:
            problems.append(f"0x{analysis.address.hex()} recovered logic "
                            f"without Algorithm 1 step evidence")
    collisions = collision_cited = 0
    for analysis in report.analyses.values():
        if not (analysis.has_function_collision
                or analysis.has_storage_collision):
            continue
        collisions += 1
        kinds = kinds_of(analysis.address)
        wanted = ((FUNCTION_COLLISION in kinds)
                  if analysis.has_function_collision
                  else True) and ((STORAGE_COLLISION in kinds)
                                  if analysis.has_storage_collision
                                  else True)
        if wanted:
            collision_cited += 1
        else:
            problems.append(f"0x{analysis.address.hex()} flags a collision "
                            f"without selector/slot evidence")
    print(f"verdicts: {pattern_cited}/{proxies} proxies cite patterns, "
          f"{steps_cited}/{searched} searches cite steps, "
          f"{collision_cited}/{collisions} collisions cite evidence")
    if not (proxies and searched and collisions):
        problems.append(f"corpus too small to exercise every verdict class "
                        f"(proxies={proxies}, searched={searched}, "
                        f"collisions={collisions}) — raise --total")

    # ---- 3. repro explain over every audited address --------------------
    import contextlib
    import io

    explained = 0
    for address in audit.addresses():
        rendered = "0x" + address.hex()
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            code = repro_main(["explain", rendered, "--audit", audit_path,
                               "--json"])
        if code != 0:
            problems.append(f"explain {rendered} exited {code}")
            continue
        payload = json.loads(sink.getvalue())
        trail_record = payload.get("evidence") or {}
        if (payload.get("schema") != "repro.query/1"
                or payload.get("address") != rendered
                or trail_record.get("address") != rendered
                or not trail_record.get("evidence")):
            problems.append(f"explain {rendered} --json payload is empty "
                            f"or mislabelled")
            continue
        explained += 1
    # Spot-check the JSON round-trip on one address via the library.
    if recorded:
        sample = sorted(recorded)[0]
        record = trails[sample].to_dict()
        if EvidenceTrail.from_dict(
                json.loads(json.dumps(record))).to_dict() != record:
            problems.append(f"0x{sample.hex()}: explain --json payload "
                            f"does not round-trip")
    print(f"explain: {explained}/{len(audit.addresses())} addresses "
          f"rendered")

    # ---- 4. the default path stays digest-free and verdict-identical ----
    plain = run_sharded_sweep(spec, workers=args.workers, processes=True)
    audited_dict = report_to_dict(report)
    plain_dict = report_to_dict(plain.report)
    leaked = sum(1 for record in plain_dict["contracts"]
                 if "evidence" in record)
    if leaked:
        problems.append(f"{leaked} un-audited analyses carry an evidence "
                        f"digest")
    for record in audited_dict["contracts"]:
        record.pop("evidence", None)
    if audited_dict != plain_dict:
        problems.append("audited and un-audited sweeps disagree beyond "
                        "the evidence digests")

    if problems:
        print("explain gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"explain gate passed: {len(recorded)} evidence files, "
          f"{proxies} proxy verdicts, {searched} logic searches, "
          f"{collisions} collision verdicts — all cited")
    return 0


if __name__ == "__main__":
    sys.exit(main())
