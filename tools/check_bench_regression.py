#!/usr/bin/env python3
"""CI gate: compare two ``repro bench`` payloads for median regressions.

Wraps :func:`repro.obs.bench.compare_payloads`: fail (exit 1) when any
workload's current median exceeds the baseline median by strictly more
than its fail threshold (default 25 %), warn above 10 %, and stay tolerant
of missing/empty/zero baselines so first adoption cannot brick CI.

Usage::

    PYTHONPATH=src python -m repro bench --quick --out BENCH_ci.json
    python tools/check_bench_regression.py benchmarks/baseline.json BENCH_ci.json

Exit codes: 0 pass (including no/partial baseline), 1 regression beyond
the fail threshold, 2 usage or unreadable *current* payload.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# Runnable from the repo root without PYTHONPATH.
_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.bench import (  # noqa: E402
    FAIL_THRESHOLD,
    WARN_THRESHOLD,
    compare_payloads,
    validate_payload,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument("--fail-threshold", type=float,
                        default=FAIL_THRESHOLD,
                        help="median-regression fraction that fails the "
                             "gate (default 0.25)")
    parser.add_argument("--warn-threshold", type=float,
                        default=WARN_THRESHOLD,
                        help="median-regression fraction that warns "
                             "(default 0.10)")
    args = parser.parse_args(argv)

    try:
        with open(args.current, encoding="utf-8") as stream:
            current = json.load(stream)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read current payload {args.current!r}: {error}")
        return 2
    problems = validate_payload(current)
    if problems:
        print(f"current payload {args.current!r} is not a valid bench "
              f"result:")
        for problem in problems:
            print(f"  - {problem}")
        return 2

    try:
        with open(args.baseline, encoding="utf-8") as stream:
            baseline = json.load(stream)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline!r} — nothing to compare, "
              f"gate passes")
        return 0
    except (OSError, json.JSONDecodeError) as error:
        print(f"baseline {args.baseline!r} unreadable ({error}) — "
              f"gate passes, but fix the baseline")
        return 0

    comparison = compare_payloads(
        baseline, current,
        warn_threshold=args.warn_threshold,
        fail_threshold=args.fail_threshold,
    )
    print(comparison.render())
    return comparison.exit_code


if __name__ == "__main__":
    sys.exit(main())
