"""Verdict provenance: trails, the null object, audit dirs, rendering."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.obs.provenance import (
    AuditDir,
    EVIDENCE_KINDS,
    EvidenceNode,
    EvidenceTrail,
    NULL_TRAIL,
    PROXY_PROBE,
    SCHEMA,
    SEARCH_STEP,
    SECTION_LOGIC,
    SECTION_PROXY,
    STORAGE_COLLISION,
    evidence_filename,
    render_trail,
)

ADDRESS = bytes(range(20))


def _sample_trail() -> EvidenceTrail:
    trail = EvidenceTrail(ADDRESS)
    with trail.begin(SECTION_PROXY):
        trail.note(PROXY_PROBE, calldata="0xaabbccdd", source="crafted")
        with trail.begin("proxy.pattern", location="storage", slot="0x0"):
            trail.note("proxy.sload", slot="0x0", matched=True)
    with trail.begin(SECTION_LOGIC):
        trail.note(SEARCH_STEP, decision="split", low=0, high=8, mid=4)
    return trail


# ------------------------------------------------------------------ recording
def test_note_and_begin_build_a_nested_tree() -> None:
    trail = _sample_trail()
    assert [section.kind for section in trail.sections] == [
        SECTION_PROXY, SECTION_LOGIC]
    proxy = trail.sections[0]
    assert [child.kind for child in proxy.children] == [
        PROXY_PROBE, "proxy.pattern"]
    assert proxy.children[1].children[0].detail["matched"] is True
    assert len(trail) == 6


def test_note_kind_is_positional_only() -> None:
    """A detail key literally named ``kind`` (storage collisions have one)
    must land in the detail dict, not collide with the parameter."""
    trail = EvidenceTrail(ADDRESS)
    node = trail.note(STORAGE_COLLISION, kind="sensitive-overlap", slot=3)
    assert node.kind == STORAGE_COLLISION
    assert node.detail == {"kind": "sensitive-overlap", "slot": 3}
    with trail.begin(SECTION_PROXY, kind="nested-detail"):
        pass
    assert trail.sections[-1].detail == {"kind": "nested-detail"}
    # The null object accepts the same call shape.
    NULL_TRAIL.note(STORAGE_COLLISION, kind="sensitive-overlap")
    with NULL_TRAIL.begin(SECTION_PROXY, kind="x"):
        pass


def test_sections_begin_pops_even_on_error() -> None:
    trail = EvidenceTrail(ADDRESS)
    with pytest.raises(RuntimeError):
        with trail.begin(SECTION_PROXY):
            raise RuntimeError("boom")
    trail.note(PROXY_PROBE, calldata="0x")
    assert [section.kind for section in trail.sections] == [
        SECTION_PROXY, PROXY_PROBE]


# ---------------------------------------------------------------- null object
def test_null_trail_records_nothing_and_reuses_its_node() -> None:
    before = len(NULL_TRAIL)
    first = NULL_TRAIL.note(PROXY_PROBE, calldata="0x")
    with NULL_TRAIL.begin(SECTION_PROXY) as section:
        second = NULL_TRAIL.note(SEARCH_STEP, decision="uniform")
    assert first is second is section
    assert len(NULL_TRAIL) == before == 0
    assert NULL_TRAIL.enabled is False and EvidenceTrail().enabled is True


# ------------------------------------------------------------- serialization
def test_to_dict_from_dict_round_trip() -> None:
    trail = _sample_trail()
    record = trail.to_dict()
    assert record["schema"] == SCHEMA
    assert record["address"] == "0x" + ADDRESS.hex()
    restored = EvidenceTrail.from_dict(json.loads(json.dumps(record)))
    assert restored.to_dict() == record
    assert restored.address == ADDRESS


def test_digest_is_deterministic_and_compact() -> None:
    digest = _sample_trail().digest()
    assert digest == {
        "schema": SCHEMA,
        "sections": [SECTION_PROXY, SECTION_LOGIC],
        "kinds": {
            PROXY_PROBE: 1, "proxy.pattern": 1, "proxy.sload": 1,
            SEARCH_STEP: 1, SECTION_LOGIC: 1, SECTION_PROXY: 1,
        },
    }
    assert list(digest["kinds"]) == sorted(digest["kinds"])
    assert digest == _sample_trail().digest()


def test_taxonomy_kinds_are_unique_dotted_lowercase() -> None:
    assert len(set(EVIDENCE_KINDS)) == len(EVIDENCE_KINDS)
    for kind in EVIDENCE_KINDS:
        assert kind == kind.lower() and " " not in kind


# ------------------------------------------------------------------ audit dir
def test_audit_dir_write_read_round_trip(tmp_path) -> None:
    audit = AuditDir(str(tmp_path / "audit"))
    path = audit.write(_sample_trail())
    assert os.path.basename(path) == evidence_filename(ADDRESS)
    assert not os.path.exists(path + ".tmp")
    header = json.loads(open(path, encoding="utf-8").readline())
    assert header == {"schema": SCHEMA, "address": "0x" + ADDRESS.hex(),
                      "pid": os.getpid()}
    restored = audit.read(ADDRESS)
    assert restored.to_dict() == _sample_trail().to_dict()
    assert audit.addresses() == [ADDRESS]


def test_audit_dir_rejects_trail_without_address(tmp_path) -> None:
    with pytest.raises(ConfigurationError, match="without an address"):
        AuditDir(str(tmp_path)).write(EvidenceTrail())


def test_audit_dir_drops_a_truncated_final_line(tmp_path) -> None:
    audit = AuditDir(str(tmp_path))
    path = audit.write(_sample_trail())
    whole = open(path, encoding="utf-8").read()
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(whole[:-20])        # crash mid-final-line
    restored = audit.read(ADDRESS)
    assert [section.kind for section in restored.sections] == [SECTION_PROXY]


def test_audit_dir_refuses_earlier_corruption(tmp_path) -> None:
    audit = AuditDir(str(tmp_path))
    path = audit.write(_sample_trail())
    lines = open(path, encoding="utf-8").read().splitlines()
    lines[1] = lines[1][:10]             # garble a non-final line
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("\n".join(lines) + "\n")
    with pytest.raises(ConfigurationError, match="corrupt at line 2"):
        audit.read(ADDRESS)


def test_audit_dir_validates_schema_and_missing_files(tmp_path) -> None:
    audit = AuditDir(str(tmp_path))
    with pytest.raises(ConfigurationError, match="no evidence"):
        audit.read(ADDRESS)
    path = os.path.join(str(tmp_path), evidence_filename(ADDRESS))
    with open(path, "w", encoding="utf-8") as stream:
        stream.write('{"schema": "repro.evidence/999"}\n')
    with pytest.raises(ConfigurationError, match="schema"):
        audit.read(ADDRESS)
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("not json\n")
    with pytest.raises(ConfigurationError, match="unreadable header"):
        audit.read(ADDRESS)


def test_audit_dir_ignores_foreign_files(tmp_path) -> None:
    audit = AuditDir(str(tmp_path))
    audit.write(_sample_trail())
    (tmp_path / "README.txt").write_text("not evidence")
    (tmp_path / "zz.evidence.jsonl").write_text("{}")   # non-hex stem
    assert audit.addresses() == [ADDRESS]


def test_write_survives_non_json_detail_values(tmp_path) -> None:
    trail = EvidenceTrail(ADDRESS)
    trail.note(PROXY_PROBE, payload=b"\x00\x01")
    audit = AuditDir(str(tmp_path))
    audit.write(trail)
    restored = audit.read(ADDRESS)
    assert restored.sections[0].detail["payload"] == repr(b"\x00\x01")


# ------------------------------------------------------------------ rendering
def test_render_trail_is_an_indented_narrative() -> None:
    text = render_trail(_sample_trail())
    lines = text.splitlines()
    assert lines[0] == f"evidence for 0x{ADDRESS.hex()} ({SCHEMA})"
    assert "  proxy detection" in lines[1]
    assert any(line.startswith("    probe 0xaabbccdd") for line in lines)
    assert any(line.startswith("      SLOAD slot 0x0")
               and "matched the delegation target" in line for line in lines)
    assert any("split at 4" in line for line in lines)


def test_render_trail_handles_empty_and_unknown_kinds() -> None:
    empty = EvidenceTrail(ADDRESS)
    assert "(no evidence recorded)" in render_trail(empty)
    trail = EvidenceTrail(ADDRESS)
    trail.note("future.kind", why="forward-compat")
    assert "future.kind: why=forward-compat" in render_trail(trail)


def test_node_walk_is_preorder() -> None:
    root = EvidenceNode("a", children=[
        EvidenceNode("b", children=[EvidenceNode("c")]),
        EvidenceNode("d"),
    ])
    assert [node.kind for node in root.walk()] == ["a", "b", "c", "d"]
