"""The flight recorder: journal durability, ordering, recorder, read side."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import (
    EVENT_KINDS,
    NULL_RECORDER,
    SCHEMA,
    SUPERVISOR_TICK,
    SWEEP_START,
    WORKER_SPAWN,
    Event,
    EventJournal,
    EventRecorder,
    read_header,
    read_journal,
    total_order,
)


def test_create_writes_fsynced_schema_header(tmp_path) -> None:
    path = str(tmp_path / "sweep.events.jsonl")
    with EventJournal.create(path):
        pass
    header = read_header(path)
    assert header["schema"] == SCHEMA
    assert header["pid"] == os.getpid()
    assert header["created_unix"] > 0


def test_recorder_stamps_provenance_and_sequence(tmp_path) -> None:
    path = str(tmp_path / "sweep.events.jsonl")
    with EventJournal.create(path) as journal:
        recorder = EventRecorder(sinks=(journal,), shard=3)
        first = recorder.emit(WORKER_SPAWN, attempt=1)
        second = recorder.emit(SUPERVISOR_TICK, shard=5, completed=7)
    loaded = read_journal(path)
    assert [event.kind for event in loaded.events] == [WORKER_SPAWN,
                                                       SUPERVISOR_TICK]
    assert first.pid == second.pid == os.getpid()
    assert (first.seq, second.seq) == (0, 1)
    assert first.shard == 3          # the recorder's default shard
    assert second.shard == 5         # per-emit override wins
    assert second.mono >= first.mono
    assert loaded.events[0].attrs == {"attempt": 1}


def test_event_dict_round_trip_omits_empty_fields() -> None:
    bare = Event(kind=SWEEP_START, ts=1.25, mono=2.5, pid=42, seq=0)
    record = bare.to_dict()
    assert "shard" not in record and "attrs" not in record
    assert Event.from_dict(record) == bare
    rich = Event(kind=WORKER_SPAWN, ts=1.0, mono=2.0, pid=1, seq=9,
                 shard=0, attrs={"attempt": 2})
    assert Event.from_dict(rich.to_dict()) == rich


def test_total_order_merges_writers_by_mono_pid_seq() -> None:
    events = [
        Event(kind="b", ts=0, mono=2.0, pid=10, seq=0),
        Event(kind="d", ts=0, mono=3.0, pid=10, seq=1),
        Event(kind="a", ts=0, mono=1.0, pid=20, seq=0),
        Event(kind="c", ts=0, mono=2.0, pid=20, seq=0),  # mono tie: pid
        Event(kind="e", ts=0, mono=3.0, pid=10, seq=0),  # pid tie: seq
    ]
    assert [e.kind for e in total_order(events)] == ["a", "b", "c", "e", "d"]


def test_non_json_attribute_degrades_to_repr(tmp_path) -> None:
    path = str(tmp_path / "sweep.events.jsonl")
    with EventJournal.create(path) as journal:
        recorder = EventRecorder(sinks=(journal,))
        recorder.emit(WORKER_SPAWN, payload=object(), addr=b"\x01\x02")
    (event,) = read_journal(path).events
    assert "object object" in event.attrs["payload"]
    assert event.attrs["addr"] == repr(b"\x01\x02")


def test_truncated_final_line_is_dropped_and_counted(tmp_path) -> None:
    path = str(tmp_path / "sweep.events.jsonl")
    with EventJournal.create(path) as journal:
        recorder = EventRecorder(sinks=(journal,))
        recorder.emit(SWEEP_START, contracts=10)
        recorder.emit(WORKER_SPAWN, shard=0)
    with open(path, "a", encoding="utf-8") as stream:
        stream.write('{"kind":"worker.exit","ts":1.0,"mo')  # kill -9 here
    loaded = read_journal(path)
    assert [event.kind for event in loaded.events] == [SWEEP_START,
                                                       WORKER_SPAWN]
    assert loaded.truncated_tail == 1


def test_corruption_before_the_tail_refuses_loudly(tmp_path) -> None:
    path = str(tmp_path / "sweep.events.jsonl")
    with EventJournal.create(path) as journal:
        recorder = EventRecorder(sinks=(journal,))
        recorder.emit(SWEEP_START)
        recorder.emit(WORKER_SPAWN, shard=0)
    lines = open(path, encoding="utf-8").read().splitlines()
    lines[1] = lines[1][:10]  # garble a NON-final line
    open(path, "w", encoding="utf-8").write("\n".join(lines) + "\n")
    with pytest.raises(ConfigurationError, match="corrupt at line 2"):
        read_journal(path)


def test_append_to_continues_an_existing_journal(tmp_path) -> None:
    path = str(tmp_path / "sweep.events.jsonl")
    with EventJournal.create(path) as journal:
        EventRecorder(sinks=(journal,)).emit(SWEEP_START)
    with EventJournal.append_to(path) as journal:
        journal.append_record({"kind": WORKER_SPAWN, "ts": 1.0, "mono": 2.0,
                               "pid": 7, "seq": 0, "shard": 1})
    loaded = read_journal(path)
    assert [event.kind for event in loaded.events] == [SWEEP_START,
                                                       WORKER_SPAWN]
    assert loaded.events[1].pid == 7  # provenance preserved verbatim


def test_read_rejects_missing_empty_and_foreign_files(tmp_path) -> None:
    with pytest.raises(ConfigurationError, match="cannot read"):
        read_header(str(tmp_path / "absent.jsonl"))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ConfigurationError, match="empty"):
        read_header(str(empty))
    foreign = tmp_path / "foreign.jsonl"
    foreign.write_text('{"schema":"repro.checkpoint/1"}\n')
    with pytest.raises(ConfigurationError, match="expected"):
        read_journal(str(foreign))
    garbled = tmp_path / "garbled.jsonl"
    garbled.write_text("not json\n")
    with pytest.raises(ConfigurationError, match="unreadable header"):
        read_header(str(garbled))


def test_null_recorder_is_inert() -> None:
    assert NULL_RECORDER.enabled is False
    event = NULL_RECORDER.emit(WORKER_SPAWN, shard=9, huge="attr")
    assert event.kind == "null"
    assert NULL_RECORDER.emit(SWEEP_START) is event  # constant, no alloc


def test_taxonomy_kinds_are_unique_and_namespaced() -> None:
    assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)
    for kind in EVENT_KINDS:
        namespace, _, name = kind.partition(".")
        assert namespace and name, kind
