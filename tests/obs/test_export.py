"""Exporters: Prometheus text format, JSON round-trip, --metrics summary."""

from __future__ import annotations

import json

from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    survey_metrics_summary,
    to_json,
    to_prometheus,
)


def _populated() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("rpc.calls", method="eth_getCode").inc(12)
    registry.counter("rpc.calls", method="eth_getStorageAt").inc(26)
    registry.gauge("monitor.poll_lag").set(3)
    histogram = registry.histogram("rpc.latency_seconds",
                                   bounds=(0.001, 0.1),
                                   method="eth_getCode")
    histogram.observe(0.0005)
    histogram.observe(0.05)
    histogram.observe(2.0)
    return registry


def test_prometheus_counters_and_gauges() -> None:
    text = to_prometheus(_populated())
    assert "# TYPE repro_rpc_calls counter" in text
    assert 'repro_rpc_calls{method="eth_getCode"} 12' in text
    assert 'repro_rpc_calls{method="eth_getStorageAt"} 26' in text
    assert "# TYPE repro_monitor_poll_lag gauge" in text
    assert "repro_monitor_poll_lag 3" in text


def test_prometheus_histogram_cumulative_le_form() -> None:
    text = to_prometheus(_populated())
    assert "# TYPE repro_rpc_latency_seconds histogram" in text
    assert ('repro_rpc_latency_seconds_bucket'
            '{method="eth_getCode",le="0.001"} 1') in text
    assert ('repro_rpc_latency_seconds_bucket'
            '{method="eth_getCode",le="0.1"} 2') in text
    assert ('repro_rpc_latency_seconds_bucket'
            '{method="eth_getCode",le="+Inf"} 3') in text
    assert 'repro_rpc_latency_seconds_count{method="eth_getCode"} 3' in text


def test_prometheus_sanitizes_metric_names() -> None:
    registry = MetricsRegistry()
    registry.counter("weird.name-with~junk").inc()
    text = to_prometheus(registry)
    assert "repro_weird_name_with_junk 1" in text


def test_prometheus_snapshot_with_help_lines() -> None:
    """Exact exposition snapshot: HELP precedes TYPE for known metrics."""
    assert to_prometheus(_populated()) == (
        "# HELP repro_rpc_calls Archive-node RPC calls issued, "
        "per method.\n"
        "# TYPE repro_rpc_calls counter\n"
        'repro_rpc_calls{method="eth_getCode"} 12\n'
        'repro_rpc_calls{method="eth_getStorageAt"} 26\n'
        "# HELP repro_monitor_poll_lag Blocks the live monitor trails "
        "the chain head by.\n"
        "# TYPE repro_monitor_poll_lag gauge\n"
        "repro_monitor_poll_lag 3\n"
        "# HELP repro_rpc_latency_seconds Archive-node RPC latency, "
        "per method.\n"
        "# TYPE repro_rpc_latency_seconds histogram\n"
        'repro_rpc_latency_seconds_bucket{method="eth_getCode",'
        'le="0.001"} 1\n'
        'repro_rpc_latency_seconds_bucket{method="eth_getCode",'
        'le="0.1"} 2\n'
        'repro_rpc_latency_seconds_bucket{method="eth_getCode",'
        'le="+Inf"} 3\n'
        'repro_rpc_latency_seconds_sum{method="eth_getCode"} 2.0505\n'
        'repro_rpc_latency_seconds_count{method="eth_getCode"} 3\n'
    )


def test_prometheus_unknown_metric_gets_no_help_line() -> None:
    registry = MetricsRegistry()
    registry.counter("weird.name").inc()
    text = to_prometheus(registry)
    assert "# HELP" not in text
    assert "# TYPE repro_weird_name counter" in text


def test_help_table_covers_the_registry_call_sites() -> None:
    """Every curated HELP entry is a raw dotted name, single line, and
    every metric the core sweep emits has one."""
    from repro.obs.export import METRIC_HELP
    for name, help_text in METRIC_HELP.items():
        assert "\n" not in help_text and help_text.strip() == help_text
        assert name == name.lower()
    for required in ("rpc.calls", "rpc.latency_seconds", "span.seconds",
                     "dedup.hits", "dedup.misses",
                     "logic_recovery.getstorageat_calls",
                     "pipeline.quarantined", "parallel.respawns",
                     "resilience.retries", "faults.injected"):
        assert required in METRIC_HELP


def test_json_round_trip_matches_snapshot() -> None:
    registry = _populated()
    decoded = json.loads(to_json(registry))
    assert decoded == json.loads(json.dumps(registry.snapshot()))
    assert decoded["counters"]['rpc.calls{method="eth_getStorageAt"}'] == 26


def test_summary_reports_rpc_dedup_and_headline() -> None:
    registry = _populated()
    registry.counter("dedup.hits", cache="proxy_check").inc(30)
    registry.counter("dedup.misses", cache="proxy_check").inc(10)
    registry.counter("logic_recovery.getstorageat_calls").inc(52)
    registry.counter("logic_recovery.storage_proxies").inc(2)
    summary = survey_metrics_summary(registry)
    assert "== observability (repro.obs) ==" in summary
    assert "eth_getStorageAt" in summary and "26" in summary
    assert "hit rate=75.0%" in summary
    assert "getStorageAt calls per proxy: 26.0" in summary
    assert "paper §6.1: ~26" in summary


def test_summary_includes_span_table_and_handles_empty_denominator() -> None:
    registry = MetricsRegistry()
    tracer = SpanTracer(registry=registry)
    with tracer.span("sweep"):
        with tracer.span("proxy_check"):
            pass
    summary = survey_metrics_summary(registry)
    assert "per-stage wall time (spans):" in summary
    assert "sweep" in summary and "proxy_check" in summary
    assert "getStorageAt calls per proxy: n/a" in summary


def test_summary_optional_sections_appear_when_populated() -> None:
    registry = MetricsRegistry()
    registry.counter("evm.instructions").inc(400)
    registry.counter("evm.base_gas").inc(1200)
    registry.counter("evm.opcodes", **{"class": "push"}).inc(100)
    registry.gauge("evm.max_call_depth").max(2)
    registry.counter("proxy_check.emulation_failures",
                     cause="StackUnderflow").inc()
    registry.counter("monitor.blocks_scanned").inc(7)
    registry.counter("monitor.alerts", kind="hidden-proxy").inc(2)
    summary = survey_metrics_summary(registry)
    assert "EVM profile: 400 instructions" in summary
    assert "StackUnderflow" in summary
    assert "monitor: 7 blocks scanned" in summary
    assert "alerts[hidden-proxy]: 2" in summary
