"""The /metrics, /healthz, /progress HTTP surface (ObsServer)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.events import (
    SUPERVISOR_TICK,
    SWEEP_END,
    SWEEP_START,
    WORKER_SPAWN,
    Event,
    EventJournal,
)
from repro.obs.export import to_prometheus
from repro.obs.http import ObsServer
from repro.obs.registry import MetricsRegistry


def _get(url: str) -> tuple[int, dict, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture()
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("rpc.calls", method="eth_getStorageAt").inc(17)
    registry.gauge("parallel.heartbeat_lag_seconds").max(0.4)
    registry.histogram("span.seconds", name="proxy_check").observe(0.02)
    return registry


def _finished_journal(tmp_path) -> str:
    path = str(tmp_path / "sweep.events.jsonl")
    with EventJournal.create(path) as journal:
        journal.on_event(Event(kind=SWEEP_START, ts=1.0, mono=1.0, pid=9,
                               seq=0, attrs={"contracts": 4, "workers": 1}))
        journal.on_event(Event(kind=SWEEP_END, ts=2.0, mono=2.0, pid=9,
                               seq=1, attrs={"analyses": 4, "failures": 0}))
    return path


def test_metrics_is_byte_identical_to_the_exporter(registry) -> None:
    with ObsServer(registry) as server:
        status, headers, body = _get(server.url + "/metrics")
    assert status == 200
    assert headers["Content-Type"] == "text/plain; version=0.0.4; " \
                                      "charset=utf-8"
    assert body == to_prometheus(registry).encode("utf-8")


def test_registry_can_be_a_callable_resolved_per_request(registry) -> None:
    holder = {"registry": MetricsRegistry()}
    with ObsServer(lambda: holder["registry"]) as server:
        _, _, before = _get(server.url + "/metrics")
        holder["registry"] = registry  # the CLI swaps in the merged one
        _, _, after = _get(server.url + "/metrics")
    assert before != after
    assert after == to_prometheus(registry).encode("utf-8")


def test_healthz_without_a_journal_is_healthy(registry) -> None:
    with ObsServer(registry) as server:
        status, _, body = _get(server.url + "/healthz")
    assert status == 200
    assert json.loads(body) == {"healthy": True,
                                "reason": "no journal configured"}


def test_healthz_200_for_a_finished_sweep(registry, tmp_path) -> None:
    path = _finished_journal(tmp_path)
    with ObsServer(registry, journal_path=path) as server:
        status, _, body = _get(server.url + "/healthz")
    assert status == 200
    assert json.loads(body)["reason"] == "sweep finished"


def test_healthz_503_when_a_worker_heartbeat_is_stale(registry,
                                                      tmp_path) -> None:
    path = str(tmp_path / "hung.events.jsonl")
    with EventJournal.create(path) as journal:
        journal.on_event(Event(kind=SWEEP_START, ts=1.0, mono=0.5, pid=9,
                               seq=0, attrs={"contracts": 4, "workers": 1}))
        # mono=1.0 is aeons behind the live monotonic clock the health
        # check reads, so this last tick is maximally stale.
        journal.on_event(Event(kind=SUPERVISOR_TICK, ts=1.0, mono=1.0,
                               pid=9, seq=1, shard=0,
                               attrs={"completed": 1, "lag_s": 0.0}))
    with ObsServer(registry, journal_path=path, hung_after_s=5.0) as server:
        status, _, body = _get(server.url + "/healthz")
    assert status == 503
    verdict = json.loads(body)
    assert not verdict["healthy"]
    assert "exceeds 5.0s" in verdict["reason"]


def test_progress_serves_the_snapshot_json(registry, tmp_path) -> None:
    path = str(tmp_path / "live.events.jsonl")
    with EventJournal.create(path) as journal:
        journal.on_event(Event(kind=SWEEP_START, ts=1.0, mono=1.0, pid=9,
                               seq=0, attrs={"contracts": 6, "workers": 2}))
        journal.on_event(Event(kind=WORKER_SPAWN, ts=1.1, mono=1.1, pid=9,
                               seq=1, shard=0,
                               attrs={"total": 3, "depth": 0}))
    with ObsServer(registry, journal_path=path) as server:
        status, headers, body = _get(server.url + "/progress")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    payload = json.loads(body)
    # /progress speaks the repro.query/1 status envelope — the same bytes
    # `repro status --json` prints for this journal.
    assert payload["schema"] == "repro.query/1"
    assert payload["kind"] == "status"
    progress = payload["status"]
    assert progress["started"] and not progress["finished"]
    assert progress["contracts"] == 6
    assert progress["shards"]["0"]["state"] == "running"


def test_progress_404_without_a_journal_503_when_unreadable(
        registry, tmp_path) -> None:
    with ObsServer(registry) as server:
        status, _, _ = _get(server.url + "/progress")
        assert status == 404
    absent = str(tmp_path / "absent.events.jsonl")
    with ObsServer(registry, journal_path=absent) as server:
        status, _, body = _get(server.url + "/progress")
    assert status == 503
    assert "error" in json.loads(body)


def test_unknown_path_is_404_and_server_survives(registry) -> None:
    with ObsServer(registry) as server:
        status, _, body = _get(server.url + "/nope")
        assert status == 404
        assert b"/metrics" in body
        status, _, _ = _get(server.url + "/metrics")  # still serving
        assert status == 200


def test_ephemeral_port_and_url(registry) -> None:
    with ObsServer(registry, port=0) as server:
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"
