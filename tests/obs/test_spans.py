"""SpanTracer: nesting, attributes, sinks, registry feed, null variant."""

from __future__ import annotations

import io
import json

from repro.obs import (
    NULL_TRACER,
    JsonLinesSink,
    MetricsRegistry,
    NullSpanTracer,
    RingBufferSink,
    SpanTracer,
)


def test_span_records_duration_and_attributes() -> None:
    ring = RingBufferSink()
    tracer = SpanTracer(sinks=(ring,))
    with tracer.span("proxy_check", address="0xabc") as span:
        span.set(verdict="proxy")
    (finished,) = ring.spans
    assert finished.name == "proxy_check"
    assert finished.end is not None and finished.duration >= 0
    assert finished.attributes == {"address": "0xabc", "verdict": "proxy"}


def test_nesting_depth_and_parent() -> None:
    ring = RingBufferSink()
    tracer = SpanTracer(sinks=(ring,))
    with tracer.span("sweep"):
        assert tracer.active.name == "sweep"
        with tracer.span("proxy_check"):
            with tracer.span("emulate"):
                pass
    assert tracer.active is None
    by_name = {span.name: span for span in ring.spans}
    assert by_name["sweep"].depth == 0 and by_name["sweep"].parent is None
    assert by_name["proxy_check"].depth == 1
    assert by_name["proxy_check"].parent == "sweep"
    assert by_name["emulate"].depth == 2
    assert by_name["emulate"].parent == "proxy_check"
    # Inner spans finish (and reach sinks) before outer ones.
    assert [span.name for span in ring.spans] == ["emulate", "proxy_check",
                                                  "sweep"]


def test_stack_unwinds_on_exception() -> None:
    tracer = SpanTracer()
    try:
        with tracer.span("fails"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer.active is None


def test_ring_buffer_capacity_and_named() -> None:
    ring = RingBufferSink(capacity=3)
    tracer = SpanTracer(sinks=(ring,))
    for index in range(5):
        with tracer.span("tick", index=index):
            pass
        with tracer.span("tock"):
            pass
    assert len(ring.spans) == 3                     # only the most recent
    assert len(ring.named("tick")) + len(ring.named("tock")) == 3
    ring.clear()
    assert ring.spans == []


def test_registry_histogram_fed_per_span_name() -> None:
    registry = MetricsRegistry()
    tracer = SpanTracer(registry=registry)
    with tracer.span("logic_history"):
        pass
    with tracer.span("logic_history"):
        pass
    histogram = registry.histogram("span.seconds", name="logic_history")
    assert histogram.count == 2
    assert histogram.sum >= 0


def test_jsonl_sink_writes_one_object_per_line(tmp_path) -> None:
    path = tmp_path / "spans.jsonl"
    sink = JsonLinesSink(str(path))
    tracer = SpanTracer(sinks=(sink,))
    with tracer.span("a", n=1):
        with tracer.span("b"):
            pass
    sink.close()
    lines = path.read_text().strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert [record["name"] for record in records] == ["b", "a"]
    assert records[1]["attributes"] == {"n": 1}
    assert records[0]["parent"] == "a"


def test_jsonl_sink_accepts_file_like_without_closing_it() -> None:
    stream = io.StringIO()
    sink = JsonLinesSink(stream)
    tracer = SpanTracer(sinks=(sink,))
    with tracer.span("x"):
        pass
    sink.close()                       # must not close a borrowed stream
    assert not stream.closed
    assert json.loads(stream.getvalue())["name"] == "x"


def test_add_sink_after_construction() -> None:
    tracer = SpanTracer()
    ring = RingBufferSink()
    tracer.add_sink(ring)
    with tracer.span("late"):
        pass
    assert ring.named("late")


def test_jsonl_sink_survives_non_json_attributes() -> None:
    """A live sweep must never die on a non-JSON span attribute — it
    degrades to its repr in the trace (same rule as the event journal)."""
    stream = io.StringIO()
    sink = JsonLinesSink(stream)
    tracer = SpanTracer(sinks=(sink,))
    with tracer.span("risky", payload=object(), raw=b"\x00\x01"):
        pass
    record = json.loads(stream.getvalue())
    assert "object object" in record["attributes"]["payload"]
    assert record["attributes"]["raw"] == repr(b"\x00\x01")


def test_null_tracer_is_inert() -> None:
    tracer = NullSpanTracer()
    with tracer.span("anything", huge="attr") as span:
        span.set(more="attrs")
    assert span.attributes == {}
    assert NULL_TRACER.active is None
