"""EVM profiling: opcode classification and the ProfilingTracer."""

from __future__ import annotations

from repro.evm import opcodes as op
from repro.evm.tracer import CallEvent, CreateEvent, LogEvent
from repro.obs import MetricsRegistry, ProfilingTracer, opcode_class

ADDR = b"\x11" * 20


def test_opcode_classes_cover_representatives() -> None:
    assert opcode_class(op.ADD) == "arithmetic"
    assert opcode_class(op.LT) == "compare-bitwise"
    assert opcode_class(op.KECCAK256) == "keccak"
    assert opcode_class(op.CALLER) == "environment"
    assert opcode_class(op.SLOAD) == "storage"
    assert opcode_class(op.SSTORE) == "storage"
    assert opcode_class(op.MLOAD) == "memory"
    assert opcode_class(op.JUMPDEST) == "flow"
    assert opcode_class(0x60) == "push"            # PUSH1
    assert opcode_class(0x80) == "dup"             # DUP1
    assert opcode_class(0x90) == "swap"            # SWAP1
    assert opcode_class(op.LOG0) == "log"
    assert opcode_class(op.CREATE) == "create"
    assert opcode_class(op.CREATE2) == "create"


def test_call_and_halt_families_override_ranges() -> None:
    # CALL/RETURN interleave numerically in 0xF0..0xFF; the families must
    # resolve before any range lookup.
    for value in (op.CALL, op.CALLCODE, op.DELEGATECALL, op.STATICCALL):
        assert opcode_class(value) == "call"
    for value in (op.STOP, op.RETURN, op.REVERT, op.SELFDESTRUCT, op.INVALID):
        assert opcode_class(value) == "halt"


def test_unassigned_byte_is_other() -> None:
    assert opcode_class(0x0C) == "other"           # gap after SIGNEXTEND


def test_tracer_counts_instructions_and_base_gas() -> None:
    tracer = ProfilingTracer()
    program = (op.PUSH1, op.PUSH1, op.ADD, op.SLOAD, op.DELEGATECALL, op.STOP)
    for value in program:
        tracer.on_instruction(None, 0, value)
    assert tracer.instructions == len(program)
    assert tracer.opcode_counts["push"] == 2
    assert tracer.opcode_counts["arithmetic"] == 1
    assert tracer.opcode_counts["storage"] == 1
    assert tracer.opcode_counts["call"] == 1
    assert tracer.opcode_counts["halt"] == 1
    expected_gas = sum(op.OPCODES[value].base_gas for value in program)
    assert tracer.base_gas == expected_gas


def test_tracer_tracks_depth_creates_and_logs() -> None:
    tracer = ProfilingTracer()
    tracer.on_call(CallEvent(
        kind="DELEGATECALL", depth=0, caller_code_address=ADDR,
        caller_storage_address=ADDR, caller_calldata=b"", target=ADDR,
        input_data=b"", value=0, pc=0))
    tracer.on_call(CallEvent(
        kind="CALL", depth=2, caller_code_address=ADDR,
        caller_storage_address=ADDR, caller_calldata=b"", target=ADDR,
        input_data=b"", value=0, pc=0))
    tracer.on_create(CreateEvent(
        kind="CREATE", depth=0, creator=ADDR, new_address=ADDR,
        init_code=b"", value=0))
    tracer.on_log(LogEvent(emitter=ADDR, topics=(), data=b"", depth=1))
    assert tracer.max_call_depth == 3               # sub-frame of depth-2 call
    assert tracer.creates == 1
    assert tracer.logs == 1


def test_flush_exports_and_zeroes_but_keeps_depth_mark() -> None:
    registry = MetricsRegistry()
    tracer = ProfilingTracer()
    for value in (op.PUSH1, op.SLOAD, op.STOP):
        tracer.on_instruction(None, 0, value)
    tracer.on_call(CallEvent(
        kind="CALL", depth=1, caller_code_address=ADDR,
        caller_storage_address=ADDR, caller_calldata=b"", target=ADDR,
        input_data=b"", value=0, pc=0))
    tracer.flush_to(registry)

    assert registry.counter_value("evm.instructions") == 3
    assert registry.counter_value("evm.opcodes", **{"class": "storage"}) == 1
    assert registry.counter_value("evm.base_gas") > 0
    assert registry.gauge("evm.max_call_depth").value == 2
    # Accumulators are zeroed; the depth high-water mark survives.
    assert tracer.instructions == 0 and tracer.opcode_counts == {}
    assert tracer.max_call_depth == 2

    # A second, quieter flush must not regress the gauge.
    tracer.on_instruction(None, 0, op.STOP)
    tracer.flush_to(registry)
    assert registry.counter_value("evm.instructions") == 4
    assert registry.gauge("evm.max_call_depth").value == 2


def test_profiler_rides_along_a_real_proxy_check(chain) -> None:
    from repro.core.proxy_detector import ProxyDetector
    from repro.lang import compile_contract, stdlib
    from tests.conftest import ALICE

    wallet = chain.deploy(
        ALICE,
        compile_contract(stdlib.simple_wallet("W", ALICE)).init_code,
    ).created_address
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", wallet, ALICE)).init_code,
    ).created_address

    profiler = ProfilingTracer()
    detector = ProxyDetector(chain.state, chain.block_context(),
                             profiler=profiler)
    check = detector.check(proxy)
    assert check.is_proxy
    assert profiler.instructions > 0
    assert profiler.opcode_counts.get("call", 0) >= 1   # the DELEGATECALL
    assert profiler.max_call_depth >= 1
