"""Flame-graph attribution (`repro.obs.evmprof.FlameProfiler`)."""

from __future__ import annotations

import io
from dataclasses import dataclass

import pytest

from repro.obs.evmprof import FlameProfiler, frame_label


@dataclass
class _FakeFrame:
    """Just enough of an interpreter frame for the profiler hooks."""

    code_address: bytes
    calldata: bytes
    depth: int


PUSH1 = 0x60   # base gas 3
STOP = 0x00    # base gas 0


def _frame(address_byte: int, selector: bytes, depth: int) -> _FakeFrame:
    return _FakeFrame(code_address=bytes([address_byte]) * 20,
                      calldata=selector + b"\x00" * 28, depth=depth)


class TestFrameLabel:
    def test_selector_label(self) -> None:
        frame = _frame(0xAB, b"\xde\xad\xbe\xef", 0)
        assert frame_label(frame) == "0xabababab:0xdeadbeef"

    def test_short_calldata_is_fallback(self) -> None:
        frame = _FakeFrame(code_address=b"\x01" * 20, calldata=b"\x01",
                           depth=0)
        assert frame_label(frame) == "0x01010101:fallback"


class TestFlameProfiler:
    def test_root_only_attribution(self) -> None:
        profiler = FlameProfiler()
        root = _frame(0x11, b"\xaa\xbb\xcc\xdd", 0)
        for _ in range(3):
            profiler.on_instruction(root, 0, PUSH1)
        key = ("0x11111111:0xaabbccdd",)
        assert profiler.stack_costs[key] == [3, 9]
        # The aggregate ProfilingTracer view still accumulates.
        assert profiler.instructions == 3
        assert profiler.base_gas == 9

    def test_nested_call_builds_stack_and_returns_pop_it(self) -> None:
        profiler = FlameProfiler()
        root = _frame(0x11, b"\xaa\xaa\xaa\xaa", 0)
        sub = _frame(0x22, b"\xaa\xaa\xaa\xaa", 1)
        profiler.on_instruction(root, 0, PUSH1)
        profiler.on_instruction(sub, 0, PUSH1)
        profiler.on_instruction(sub, 2, PUSH1)
        profiler.on_instruction(root, 4, PUSH1)    # back after the return
        root_key = ("0x11111111:0xaaaaaaaa",)
        sub_key = ("0x11111111:0xaaaaaaaa", "0x22222222:0xaaaaaaaa")
        assert profiler.stack_costs[root_key][0] == 2
        assert profiler.stack_costs[sub_key][0] == 2

    def test_sibling_call_at_same_depth_gets_its_own_stack(self) -> None:
        profiler = FlameProfiler()
        root = _frame(0x11, b"\xaa\xaa\xaa\xaa", 0)
        first = _frame(0x22, b"\xbb\xbb\xbb\xbb", 1)
        second = _frame(0x33, b"\xbb\xbb\xbb\xbb", 1)
        profiler.on_instruction(root, 0, PUSH1)
        profiler.on_instruction(first, 0, PUSH1)
        profiler.on_instruction(second, 0, PUSH1)
        stacks = {key[-1] for key in profiler.stack_costs if len(key) == 2}
        assert stacks == {"0x22222222:0xbbbbbbbb", "0x33333333:0xbbbbbbbb"}

    def test_collapsed_output_format_and_weights(self) -> None:
        profiler = FlameProfiler()
        root = _frame(0x11, b"\xaa\xaa\xaa\xaa", 0)
        profiler.on_instruction(root, 0, PUSH1)
        profiler.on_instruction(root, 2, PUSH1)
        gas_lines = profiler.collapsed(weight="gas")
        instr_lines = profiler.collapsed(weight="instructions")
        assert gas_lines == ["0x11111111:0xaaaaaaaa 6"]
        assert instr_lines == ["0x11111111:0xaaaaaaaa 2"]

    def test_zero_weight_stacks_are_omitted(self) -> None:
        profiler = FlameProfiler()
        root = _frame(0x11, b"\xaa\xaa\xaa\xaa", 0)
        profiler.on_instruction(root, 0, STOP)     # 0 base gas
        assert profiler.collapsed(weight="gas") == []
        assert profiler.collapsed(weight="instructions") != []

    def test_unknown_weight_raises(self) -> None:
        with pytest.raises(ValueError, match="weight"):
            FlameProfiler().collapsed(weight="joules")

    def test_write_collapsed_to_stream_and_bad_path(self, tmp_path) -> None:
        profiler = FlameProfiler()
        profiler.on_instruction(_frame(0x11, b"\xaa\xaa\xaa\xaa", 0),
                                0, PUSH1)
        stream = io.StringIO()
        profiler.write_collapsed(stream)
        assert stream.getvalue().endswith(" 3\n")
        target = tmp_path / "flame.collapsed"
        profiler.write_collapsed(str(target), weight="instructions")
        assert target.read_text().strip() == "0x11111111:0xaaaaaaaa 1"
        with pytest.raises(OSError, match="/nope/flame"):
            profiler.write_collapsed("/nope/flame")

    def test_flush_to_registry_keeps_stack_costs(self) -> None:
        from repro.obs.registry import MetricsRegistry
        profiler = FlameProfiler()
        profiler.on_instruction(_frame(0x11, b"\xaa\xaa\xaa\xaa", 0),
                                0, PUSH1)
        registry = MetricsRegistry()
        profiler.flush_to(registry)
        assert registry.counter_value("evm.instructions") == 1
        assert profiler.instructions == 0          # aggregate zeroed
        assert profiler.stack_costs                # attribution retained


class TestFlameProfilerOnRealSweep:
    def test_pipeline_injection_produces_delegatecall_stacks(self) -> None:
        from repro.core.pipeline import Proxion, ProxionOptions
        from repro.corpus.generator import generate_landscape

        profiler = FlameProfiler()
        world = generate_landscape(total=30, seed=5)
        proxion = Proxion(world.node, registry=world.registry, dataset=world.dataset,
                          options=ProxionOptions(profile_evm=True),
                          evm_profiler=profiler)
        proxion.analyze_all()

        assert proxion.evm_profiler is profiler
        assert profiler.stack_costs
        # Proxies delegatecall into logic contracts → depth-2 stacks exist.
        assert any(len(key) >= 2 for key in profiler.stack_costs)
        for line in profiler.collapsed():
            stack, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert all(part for part in stack.split(";"))
        # The aggregate profile was flushed into the sweep's registry.
        assert world.node.metrics.counter_value("evm.instructions") > 0

    def test_injected_profiler_without_option_flag_still_profiles(self) -> None:
        from repro.core.pipeline import Proxion
        from repro.corpus.generator import generate_landscape

        profiler = FlameProfiler()
        world = generate_landscape(total=20, seed=6)
        proxion = Proxion(world.node, registry=world.registry, dataset=world.dataset,
                          evm_profiler=profiler)
        proxion.analyze_all()
        assert profiler.stack_costs
