"""Integration: pipeline/monitor instrumentation and the --metrics CLI."""

from __future__ import annotations

import json

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.dataset import ContractDataset
from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.cli import main
from repro.core.monitor import DeploymentMonitor
from repro.core.pipeline import Proxion
from repro.corpus import generate_landscape
from repro.lang import compile_contract, stdlib
from repro.obs import NULL_REGISTRY

from tests.conftest import ALICE


@pytest.fixture(scope="module")
def swept():
    """A small sweep plus the Proxion that produced it."""
    landscape = generate_landscape(total=80, seed=5)
    proxion = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset)
    report = proxion.analyze_all()
    return proxion, report


def test_registry_agrees_with_api_call_counter(swept) -> None:
    proxion, _ = swept
    registry = proxion.metrics
    shim = proxion.node.api_calls
    for method in ("eth_getCode", "eth_getStorageAt"):
        assert registry.counter_value("rpc.calls", method=method) \
            == shim.get(method)
    assert shim.get("eth_getStorageAt") > 0


def test_report_dedup_fields_match_registry(swept) -> None:
    proxion, report = swept
    registry = proxion.metrics
    assert report.proxy_check_cache_hits \
        == registry.counter_value("dedup.hits", cache="proxy_check")
    assert report.proxy_check_cache_misses \
        == registry.counter_value("dedup.misses", cache="proxy_check")
    assert report.function_cache_hits \
        == registry.counter_value("dedup.hits", cache="function_collision")
    assert report.storage_cache_misses \
        == registry.counter_value("dedup.misses", cache="storage_collision")
    assert report.collision_cache_hits \
        == report.function_cache_hits + report.storage_cache_hits
    rates = report.dedup_hit_rates()
    assert set(rates) == {"proxy_check", "function_collision",
                          "storage_collision"}
    assert all(0.0 <= rate <= 1.0 for rate in rates.values())


def test_pipeline_spans_and_recovery_counters(swept) -> None:
    proxion, report = swept
    registry = proxion.metrics
    sweep = registry.histogram("span.seconds", name="sweep")
    checks = registry.histogram("span.seconds", name="proxy_check")
    assert sweep.count == 1
    assert checks.count == len(report)
    assert proxion.spans.named("sweep")
    # The §6.1 numerator/denominator are first-class counters.
    calls = registry.counter_value("logic_recovery.getstorageat_calls")
    proxies = registry.counter_value("logic_recovery.storage_proxies")
    assert proxies > 0 and calls >= proxies


def test_null_registry_pipeline_records_nothing(swept) -> None:
    landscape = generate_landscape(total=30, seed=9)
    node = ArchiveNode(landscape.node.chain, metrics=NULL_REGISTRY)
    proxion = Proxion(node, registry=landscape.registry, dataset=landscape.dataset)
    report = proxion.analyze_all()
    assert len(report) > 0
    assert proxion.metrics is NULL_REGISTRY
    assert proxion.metrics.snapshot()["counters"] == {}
    assert proxion.spans.spans == []             # the null tracer has no sinks
    # The report-level dedup fields stay zero without a live registry...
    assert report.proxy_check_cache_hits == 0
    # ...but the analyses themselves are unaffected.
    assert report.proxies()


def test_monitor_scans_only_new_blocks(chain: Blockchain) -> None:
    proxion = Proxion(ArchiveNode(chain), registry=SourceRegistry(), dataset=ContractDataset())
    monitor = DeploymentMonitor(proxion)
    wallet_init = compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    chain.deploy(ALICE, wallet_init)
    # The cursor starts at block 0, so genesis-numbered blocks are skipped.
    blocks_after_first = sum(1 for block in chain.blocks if block.number > 0)
    monitor.poll()
    assert monitor.stats.blocks_scanned == blocks_after_first
    assert monitor.stats.polls == 1

    monitor.poll()                               # nothing new
    assert monitor.stats.blocks_scanned == blocks_after_first

    chain.deploy(ALICE, wallet_init)
    chain.deploy(ALICE, wallet_init)
    monitor.poll()
    assert monitor.stats.blocks_scanned == blocks_after_first + 2
    assert monitor.stats.polls == 3
    assert proxion.metrics.counter_value("monitor.blocks_scanned") \
        == monitor.stats.blocks_scanned
    assert proxion.metrics.gauge("monitor.poll_lag").value == 2


def test_monitor_alert_kinds_reach_registry(chain: Blockchain) -> None:
    proxion = Proxion(ArchiveNode(chain), registry=SourceRegistry(), dataset=ContractDataset())
    monitor = DeploymentMonitor(proxion)
    wallet = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code,
    ).created_address
    chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", wallet, ALICE)).init_code)
    alerts = monitor.poll()
    assert alerts
    by_kind: dict[str, int] = {}
    for alert in alerts:
        by_kind[alert.kind] = by_kind.get(alert.kind, 0) + 1
    for kind, count in by_kind.items():
        assert proxion.metrics.counter_value("monitor.alerts",
                                             kind=kind) == count


# ------------------------------------------------------------------ CLI level
def test_survey_metrics_flag_prints_sec61_headline(capsys) -> None:
    assert main(["survey", "--total", "60", "--seed", "3", "--metrics"]) == 0
    output = capsys.readouterr().out
    assert "== observability (repro.obs) ==" in output
    assert "per-stage wall time (spans):" in output
    assert "RPC usage (per method):" in output
    assert "eth_getStorageAt" in output
    assert "dedup caches (§6.1):" in output
    assert "getStorageAt calls per proxy:" in output


def test_survey_json_metrics_snapshot(capsys) -> None:
    assert main(["survey", "--total", "50", "--seed", "3", "--json",
                 "--metrics"]) == 0
    payload = json.loads(capsys.readouterr().out)
    counters = payload["metrics"]["counters"]
    assert counters['rpc.calls{method="eth_getCode"}'] > 0
    assert counters['rpc.calls{method="eth_getStorageAt"}'] > 0
    assert 'span.seconds{name="sweep"}' in payload["metrics"]["histograms"]
    assert "dedup" in payload["summary"]
    # The registry and the shim tell the same story end to end.
    storage_calls = counters['rpc.calls{method="eth_getStorageAt"}']
    recovered = counters.get("logic_recovery.getstorageat_calls", 0)
    assert 0 < recovered <= storage_calls


def test_survey_prom_and_trace_outputs(tmp_path, capsys) -> None:
    prom = tmp_path / "metrics.prom"
    spans = tmp_path / "spans.jsonl"
    assert main(["survey", "--total", "40", "--seed", "5",
                 "--metrics-prom", str(prom),
                 "--trace-jsonl", str(spans),
                 "--profile-evm", "--metrics"]) == 0
    output = capsys.readouterr().out
    assert "EVM profile:" in output
    text = prom.read_text()
    assert "# TYPE repro_rpc_calls counter" in text
    assert 'repro_rpc_calls{method="eth_getCode"}' in text
    lines = spans.read_text().strip().splitlines()
    names = {json.loads(line)["name"] for line in lines}
    assert "sweep" in names and "proxy_check" in names


def test_accuracy_metrics_flag(capsys) -> None:
    assert main(["accuracy", "--pairs", "2", "--seed", "1",
                 "--metrics"]) == 0
    output = capsys.readouterr().out
    assert "== observability (repro.obs) ==" in output
    assert "build_corpus" in output and "table2" in output
