"""The continuous-benchmarking harness (`repro.obs.bench`)."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.obs.bench import (
    BenchConfig,
    SCHEMA,
    WORKLOADS,
    compare_payloads,
    run_suite,
    select_workloads,
    timing_stats,
    validate_payload,
    write_payload,
)


def _payload(workloads: dict[str, float]) -> dict:
    """A minimal valid payload with the given per-workload medians."""
    return {
        "schema": SCHEMA,
        "meta": {"python": "3.x"},
        "workloads": {
            name: {
                "repeats": 3,
                "timings_s": [median] * 3,
                "stats": {"min": median, "median": median,
                          "stddev": 0.0, "iqr": 0.0},
                "spans": {}, "rpc": {}, "dedup": {}, "evm": {},
            }
            for name, median in workloads.items()
        },
    }


# ----------------------------------------------------------------- the suite
class TestSuite:
    def test_quick_suite_has_at_least_four_workloads(self) -> None:
        selected = select_workloads(BenchConfig(quick=True))
        assert len(selected) >= 4
        names = {workload.name for workload in selected}
        assert "proxy_check" in names and "logic_recovery" in names

    def test_full_suite_adds_the_large_sweep(self) -> None:
        quick = {w.name for w in select_workloads(BenchConfig(quick=True))}
        full = {w.name for w in select_workloads(BenchConfig(quick=False))}
        assert "sweep_500" in full - quick

    def test_unknown_workload_filter_raises(self) -> None:
        with pytest.raises(KeyError, match="nonsense"):
            select_workloads(BenchConfig(only=("nonsense",)))

    def test_run_suite_produces_valid_payload(self, tmp_path) -> None:
        config = BenchConfig(quick=True, repeats=1, warmup=0,
                             only=("proxy_check", "logic_recovery"))
        payload = run_suite(config)
        assert validate_payload(payload) == []
        assert payload["schema"] == SCHEMA
        assert payload["meta"]["python"]

        row = payload["workloads"]["proxy_check"]
        assert row["stats"]["median"] > 0
        assert row["rpc"]["eth_getCode"] > 0
        assert row["dedup"]["proxy_check"]["hits"] > 0
        assert row["evm"]["instructions"] > 0
        assert "proxy_check" in row["spans"]

        recovery = payload["workloads"]["logic_recovery"]
        assert recovery["meta"]["storage_proxies"] > 0
        assert recovery["rpc"]["eth_getStorageAt"] > 0
        assert "logic_history" in recovery["spans"]

        target = tmp_path / "BENCH_test.json"
        write_payload(payload, str(target))
        assert validate_payload(json.loads(target.read_text())) == []

    def test_pipeline_parallel_workload_reports_critical_path(self) -> None:
        config = BenchConfig(quick=True, repeats=1, warmup=0,
                             only=("pipeline_parallel",))
        payload = run_suite(config)
        assert validate_payload(payload) == []
        row = payload["workloads"]["pipeline_parallel"]
        meta = row["meta"]
        assert meta["workers"] == 4
        assert meta["strategy"] == "codehash"
        assert meta["host_cpus"] >= 1
        assert meta["sum_shard_cpu_s"] >= meta["max_shard_cpu_s"] > 0
        assert meta["critical_path_speedup"] >= 1.0
        # The merged registry carries the workers' RPC and dedup activity.
        assert row["rpc"]["eth_getCode"] > 0
        assert row["dedup"]["proxy_check"]["hits"] > 0

    def test_write_payload_surfaces_oserror_with_path(self) -> None:
        with pytest.raises(OSError, match="/nope/BENCH.json"):
            write_payload(_payload({"a": 1.0}), "/nope/BENCH.json")

    def test_every_registered_workload_is_quick_sized_or_flagged(self) -> None:
        for workload in WORKLOADS.values():
            assert workload.name and workload.description
            assert isinstance(workload.quick, bool)


class TestTimingStats:
    def test_empty(self) -> None:
        assert timing_stats([])["median"] == 0.0

    def test_single(self) -> None:
        stats = timing_stats([0.5])
        assert stats["min"] == stats["median"] == stats["p75"] == 0.5
        assert stats["stddev"] == 0.0 and stats["iqr"] == 0.0

    def test_spread(self) -> None:
        stats = timing_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats["median"] == 3.0
        assert stats["min"] == 1.0 and stats["max"] == 5.0
        assert stats["iqr"] == pytest.approx(2.0)
        assert stats["stddev"] > 0


class TestValidatePayload:
    def test_valid(self) -> None:
        assert validate_payload(_payload({"a": 1.0})) == []

    def test_not_an_object(self) -> None:
        assert validate_payload([1, 2]) == ["payload is not a JSON object"]

    def test_wrong_schema_and_empty_workloads(self) -> None:
        problems = validate_payload({"schema": "other/9", "workloads": {}})
        assert any("schema" in p for p in problems)
        assert any("no workloads" in p for p in problems)

    def test_missing_breakdowns_reported(self) -> None:
        payload = _payload({"a": 1.0})
        del payload["workloads"]["a"]["evm"]
        del payload["workloads"]["a"]["stats"]["iqr"]
        problems = validate_payload(payload)
        assert any("'evm'" in p for p in problems)
        assert any("'iqr'" in p for p in problems)


# ------------------------------------------------------------- the comparator
class TestComparator:
    def test_two_times_slowdown_fails(self) -> None:
        comparison = compare_payloads(_payload({"sweep_80": 1.0}),
                                      _payload({"sweep_80": 2.0}))
        assert comparison.failed and comparison.exit_code == 1
        assert comparison.rows[0].status == "fail"
        assert comparison.rows[0].delta == pytest.approx(1.0)

    def test_unchanged_passes(self) -> None:
        comparison = compare_payloads(_payload({"sweep_80": 1.0}),
                                      _payload({"sweep_80": 1.0}))
        assert not comparison.failed
        assert comparison.rows[0].status == "ok"

    def test_improvement_is_reported_not_failed(self) -> None:
        comparison = compare_payloads(_payload({"sweep_80": 1.0}),
                                      _payload({"sweep_80": 0.5}))
        assert not comparison.failed
        assert comparison.rows[0].status == "improved"

    def test_empty_baseline_is_tolerated(self) -> None:
        for baseline in ({}, None, {"workloads": {}}):
            comparison = compare_payloads(baseline,
                                          _payload({"sweep_80": 1.0}))
            assert not comparison.failed
            assert comparison.rows[0].status == "new"

    def test_workload_only_in_baseline_warns_not_fails(self) -> None:
        comparison = compare_payloads(_payload({"gone": 1.0}), _payload({}))
        assert not comparison.failed
        assert comparison.rows[0].status == "missing"
        assert comparison.warnings

    def test_zero_time_baseline_is_skipped(self) -> None:
        comparison = compare_payloads(_payload({"sweep_80": 0.0}),
                                      _payload({"sweep_80": 1.0}))
        assert not comparison.failed
        assert comparison.rows[0].status == "zero-baseline"

    def test_exactly_25_percent_warns_but_does_not_fail(self) -> None:
        """The gate is *strictly greater than* the threshold."""
        comparison = compare_payloads(_payload({"sweep_80": 1.0}),
                                      _payload({"sweep_80": 1.25}))
        assert not comparison.failed
        assert comparison.rows[0].status == "warn"

    def test_just_above_25_percent_fails(self) -> None:
        comparison = compare_payloads(_payload({"sweep_80": 1.0}),
                                      _payload({"sweep_80": 1.2501}))
        assert comparison.failed

    def test_11_percent_warns(self) -> None:
        comparison = compare_payloads(_payload({"sweep_80": 1.0}),
                                      _payload({"sweep_80": 1.11}))
        assert not comparison.failed
        assert comparison.rows[0].status == "warn"

    def test_per_workload_override_grants_headroom(self) -> None:
        # selector_mining's default override tolerates up to 50 %.
        comparison = compare_payloads(_payload({"selector_mining": 1.0}),
                                      _payload({"selector_mining": 1.4}))
        assert not comparison.failed
        comparison = compare_payloads(_payload({"selector_mining": 1.0}),
                                      _payload({"selector_mining": 1.6}))
        assert comparison.failed

    def test_override_never_tightens_a_looser_global_threshold(self) -> None:
        comparison = compare_payloads(_payload({"selector_mining": 1.0}),
                                      _payload({"selector_mining": 1.6}),
                                      fail_threshold=1.0)
        assert not comparison.failed

    def test_render_mentions_verdict(self) -> None:
        comparison = compare_payloads(_payload({"a": 1.0}),
                                      _payload({"a": 2.0}))
        text = comparison.render()
        assert "FAIL" in text and "100.0% slower" in text


# --------------------------------------------------- tools gate (CI wrapper)
def _load_gate_module():
    path = (pathlib.Path(__file__).resolve().parents[2]
            / "tools" / "check_bench_regression.py")
    spec = importlib.util.spec_from_file_location("check_bench_regression",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegressionGateScript:
    @pytest.fixture()
    def gate(self):
        return _load_gate_module()

    def _write(self, tmp_path, name: str, payload) -> str:
        target = tmp_path / name
        target.write_text(json.dumps(payload), encoding="utf-8")
        return str(target)

    def test_synthetic_2x_slowdown_exits_nonzero(self, gate, tmp_path,
                                                 capsys) -> None:
        baseline = self._write(tmp_path, "base.json",
                               _payload({"sweep_80": 1.0}))
        current = self._write(tmp_path, "cur.json",
                              _payload({"sweep_80": 2.0}))
        assert gate.main([baseline, current]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_baseline_file_passes(self, gate, tmp_path,
                                          capsys) -> None:
        current = self._write(tmp_path, "cur.json", _payload({"a": 1.0}))
        assert gate.main([str(tmp_path / "absent.json"), current]) == 0
        assert "gate passes" in capsys.readouterr().out

    def test_corrupt_baseline_passes_with_note(self, gate, tmp_path,
                                               capsys) -> None:
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        current = self._write(tmp_path, "cur.json", _payload({"a": 1.0}))
        assert gate.main([str(bad), current]) == 0
        assert "unreadable" in capsys.readouterr().out

    def test_invalid_current_payload_is_a_usage_error(self, gate, tmp_path,
                                                      capsys) -> None:
        baseline = self._write(tmp_path, "base.json", _payload({"a": 1.0}))
        current = self._write(tmp_path, "cur.json", {"schema": "wrong"})
        assert gate.main([baseline, current]) == 2
        assert "not a valid bench result" in capsys.readouterr().out

    def test_custom_threshold(self, gate, tmp_path) -> None:
        baseline = self._write(tmp_path, "base.json",
                               _payload({"a": 1.0}))
        current = self._write(tmp_path, "cur.json", _payload({"a": 1.2}))
        assert gate.main([baseline, current]) == 0
        assert gate.main([baseline, current, "--fail-threshold", "0.1"]) == 1
