"""Live ops views: journal snapshot/status, tail, health verdicts."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.console import (
    format_event,
    journal_health,
    journal_snapshot,
    render_status,
    tail_journal,
)
from repro.obs.events import (
    CHECKPOINT_RESUME,
    SUPERVISOR_BISECT,
    SUPERVISOR_QUARANTINE,
    SUPERVISOR_TICK,
    SWEEP_END,
    SWEEP_START,
    WORKER_EXIT,
    WORKER_RESPAWN,
    WORKER_SPAWN,
    Event,
    EventJournal,
)


def _write(path, *records) -> str:
    """A journal from (kind, mono, shard, attrs) rows; one synthetic pid."""
    with EventJournal.create(str(path)) as journal:
        for seq, (kind, mono, shard, attrs) in enumerate(records):
            journal.on_event(Event(kind=kind, ts=1000.0 + mono, mono=mono,
                                   pid=101, seq=seq, shard=shard,
                                   attrs=attrs))
    return str(path)


LIVE_ROWS = (
    (SWEEP_START, 10.0, None, {"contracts": 20, "workers": 2}),
    (WORKER_SPAWN, 10.1, 0, {"task": 0, "total": 12, "depth": 0}),
    (WORKER_SPAWN, 10.1, 1, {"task": 1, "total": 8, "depth": 0}),
    (SUPERVISOR_TICK, 11.0, 0, {"completed": 5, "lag_s": 0.2}),
    (SUPERVISOR_TICK, 11.0, 1, {"completed": 3, "lag_s": 0.1}),
    (WORKER_RESPAWN, 11.5, 1, {"attempt": 2, "error": "crash"}),
    (SUPERVISOR_BISECT, 12.0, 1, {"pending": 2, "depth": 1}),
    (SUPERVISOR_QUARANTINE, 12.5, 1, {"address": "0xdead"}),
    (CHECKPOINT_RESUME, 12.6, 1, {"restored": 3,
                                  "recovered_truncations": 1}),
)


def test_snapshot_folds_a_live_journal(tmp_path) -> None:
    path = _write(tmp_path / "live.jsonl", *LIVE_ROWS)
    status = journal_snapshot(path, now_mono=13.0)
    assert status.started and not status.finished
    assert (status.contracts, status.workers) == (20, 2)
    assert status.completed == 8                 # 5 + 3 high-water marks
    assert status.elapsed_s == pytest.approx(3.0)
    assert status.throughput_cps == pytest.approx(8 / 3.0)
    # remaining = 20 - 8 completed - 1 quarantined
    assert status.eta_s == pytest.approx(11 / (8 / 3.0))
    assert (status.respawns, status.bisections, status.quarantined) \
        == (1, 1, 1)
    assert (status.resumed, status.recovered_truncations) == (3, 1)
    zero, one = status.shards[0], status.shards[1]
    assert (zero.state, zero.total, zero.completed) == ("running", 12, 5)
    # lag = tick's own 0.2s + (now 13.0 - tick mono 11.0)
    assert zero.lag_s == pytest.approx(2.2)
    assert one.state == "bisecting"
    assert (one.respawns, one.bisections, one.quarantined) == (1, 1, 1)


def test_snapshot_of_a_finished_sweep(tmp_path) -> None:
    rows = LIVE_ROWS + (
        (WORKER_EXIT, 13.0, 0, {"exitcode": 0, "clean": True,
                                "completed": 12}),
        (SWEEP_END, 14.0, None, {"analyses": 19, "failures": 1}),
    )
    status = journal_snapshot(_write(tmp_path / "done.jsonl", *rows),
                              now_mono=99.0)
    assert status.finished
    assert (status.analyses, status.failures) == (19, 1)
    assert status.eta_s is None                  # no ETA once finished
    assert all(shard.state == "done" and shard.lag_s is None
               for shard in status.shards.values())
    assert status.shards[0].completed == 12      # clean-exit final count


def test_render_status_live_and_finished(tmp_path) -> None:
    live = render_status(journal_snapshot(
        _write(tmp_path / "live.jsonl", *LIVE_ROWS), now_mono=13.0))
    assert "sweep running — 8/20 contracts across 2 shard(s)" in live
    assert "1 respawns" in live and "1 bisections" in live
    assert "3 restored from checkpoint" in live
    assert "bisecting" in live
    done = render_status(journal_snapshot(_write(
        tmp_path / "done.jsonl", *LIVE_ROWS,
        (SWEEP_END, 14.0, None, {"analyses": 19, "failures": 1}))))
    assert "sweep finished — 19 analyzed, 1 failed of 20 contracts" in done


def test_snapshot_tolerates_a_truncated_tail(tmp_path) -> None:
    path = _write(tmp_path / "cut.jsonl", *LIVE_ROWS)
    with open(path, "a", encoding="utf-8") as stream:
        stream.write('{"kind":"supervisor.tick","ts"')  # writer mid-append
    status = journal_snapshot(path, now_mono=13.0)
    assert status.truncated_tail == 1
    assert "journal line(s) skipped" in render_status(status)


def test_format_event_is_one_line_with_provenance() -> None:
    event = Event(kind=WORKER_SPAWN, ts=1700000000.125, mono=5.0, pid=77,
                  seq=0, shard=2, attrs={"attempt": 1})
    line = format_event(event)
    assert "[pid 77 shard 2] worker.spawn attempt=1" in line
    assert line.split(" ")[0].endswith(".125")
    assert "\n" not in line


def test_tail_reads_complete_lines_and_skips_dangling(tmp_path) -> None:
    path = _write(tmp_path / "tail.jsonl", *LIVE_ROWS)
    with open(path, "a", encoding="utf-8") as stream:
        stream.write('{"kind":"worker.exit"')   # no newline: in-flight
    kinds = [event.kind for event in tail_journal(path)]
    assert len(kinds) == len(LIVE_ROWS)
    assert kinds[0] == SWEEP_START


def test_tail_follow_picks_up_appends_and_stops_at_sweep_end(
        tmp_path) -> None:
    path = _write(tmp_path / "follow.jsonl", LIVE_ROWS[0])
    journal = EventJournal.append_to(path)
    script = iter([
        lambda: journal.on_event(Event(kind=WORKER_SPAWN, ts=1.0, mono=20.0,
                                       pid=101, seq=1, shard=0)),
        lambda: journal.on_event(Event(kind=SWEEP_END, ts=2.0, mono=21.0,
                                       pid=101, seq=2)),
    ])

    def fake_sleep(_seconds: float) -> None:
        next(script)()  # each idle poll, the "writer" appends one event

    kinds = [event.kind
             for event in tail_journal(path, follow=True, sleep=fake_sleep)]
    assert kinds == [SWEEP_START, WORKER_SPAWN, SWEEP_END]
    journal.close()


def test_tail_raises_on_a_corrupt_complete_line(tmp_path) -> None:
    path = _write(tmp_path / "bad.jsonl", LIVE_ROWS[0])
    with open(path, "a", encoding="utf-8") as stream:
        stream.write("not json but newline-terminated\n")
    with pytest.raises(ConfigurationError, match="corrupt complete line"):
        list(tail_journal(path))


def test_health_finished_sweep_is_healthy_forever(tmp_path) -> None:
    path = _write(tmp_path / "done.jsonl", *LIVE_ROWS,
                  (SWEEP_END, 14.0, None, {}))
    verdict = journal_health(path, hung_after_s=0.001, now_mono=1e9)
    assert verdict == {"healthy": True, "reason": "sweep finished"}


def test_health_live_sweep_within_threshold(tmp_path) -> None:
    path = _write(tmp_path / "live.jsonl", *LIVE_ROWS)
    verdict = journal_health(path, hung_after_s=30.0, now_mono=13.0)
    assert verdict["healthy"] and verdict["reason"] == "live"
    # worker lag: tick lag 0.2 + age (13.0 - 11.0)
    assert verdict["max_worker_lag_s"] == pytest.approx(2.2)
    assert verdict["supervisor_lag_s"] == pytest.approx(13.0 - 12.6)


def test_health_flips_unhealthy_on_stale_worker_tick(tmp_path) -> None:
    path = _write(tmp_path / "hung.jsonl", *LIVE_ROWS)
    verdict = journal_health(path, hung_after_s=30.0, now_mono=60.0)
    assert not verdict["healthy"]
    assert "exceeds 30.0s" in verdict["reason"]


def test_health_clean_exit_silences_that_shards_lag(tmp_path) -> None:
    rows = LIVE_ROWS + (
        (WORKER_EXIT, 12.8, 0, {"exitcode": 0, "clean": True}),
        (SUPERVISOR_TICK, 59.5, 1, {"completed": 8, "lag_s": 0.0}),
    )
    # Shard 0's tick is ancient but shard 0 exited cleanly; shard 1
    # ticked again recently, so only live lag counts.
    verdict = journal_health(_write(tmp_path / "mixed.jsonl", *rows),
                             hung_after_s=30.0, now_mono=60.0)
    assert verdict["healthy"]
    assert verdict["max_worker_lag_s"] == pytest.approx(0.5)


def test_health_of_empty_or_unreadable_journals(tmp_path) -> None:
    path = str(tmp_path / "header-only.jsonl")
    EventJournal.create(path).close()
    assert journal_health(path) == {"healthy": False,
                                    "reason": "journal has no events yet"}
    verdict = journal_health(str(tmp_path / "absent.jsonl"))
    assert not verdict["healthy"] and "cannot read" in verdict["reason"]


def test_eta_absent_while_throughput_is_zero(tmp_path) -> None:
    """A started sweep with zero completed contracts has no throughput
    and no ETA — and the renderer must not divide by it."""
    path = _write(tmp_path / "stall.jsonl",
                  (SWEEP_START, 10.0, None, {"contracts": 20, "workers": 1}),
                  (WORKER_SPAWN, 10.1, 0, {"task": 0, "total": 20,
                                           "depth": 0}),
                  (SUPERVISOR_TICK, 11.0, 0, {"completed": 0,
                                              "lag_s": 0.1}))
    status = journal_snapshot(path, now_mono=15.0)
    assert status.started and not status.finished
    assert status.completed == 0
    assert status.elapsed_s == pytest.approx(5.0)
    assert status.throughput_cps is None
    assert status.eta_s is None
    rendered = render_status(status)
    assert "eta" not in rendered
    assert "contracts/s" not in rendered
    assert "0/20" in rendered


def test_tail_follow_delivers_a_partial_line_once_and_whole(
        tmp_path) -> None:
    """A writer caught mid-append: the dangling half-line is held back,
    then delivered exactly once when its newline lands."""
    import json as _json

    path = _write(tmp_path / "midline.jsonl", LIVE_ROWS[0])
    spawn = Event(kind=WORKER_SPAWN, ts=1.0, mono=20.0, pid=101, seq=1,
                  shard=0, attrs={"task": 0})
    spawn_line = _json.dumps(spawn.to_dict(), separators=(",", ":")) + "\n"
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(spawn_line[:17])  # mid-append, no newline yet

    def finish_the_line() -> None:
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(spawn_line[17:])

    def end_the_sweep() -> None:
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(_json.dumps(
                Event(kind=SWEEP_END, ts=2.0, mono=21.0, pid=101,
                      seq=2).to_dict(), separators=(",", ":")) + "\n")

    script = iter([finish_the_line, end_the_sweep])

    def fake_sleep(_seconds: float) -> None:
        next(script)()

    events = list(tail_journal(path, follow=True, sleep=fake_sleep))
    kinds = [event.kind for event in events]
    assert kinds == [SWEEP_START, WORKER_SPAWN, SWEEP_END]
    # Delivered whole: the reassembled event carries its full attributes.
    assert events[1].attrs == {"task": 0}
    assert events[1].seq == 1


def test_total_order_breaks_mono_and_pid_ties_by_seq() -> None:
    """Events sharing one monotonic reading *and* one writer keep their
    per-writer emission order (seq); across writers, pid breaks the tie."""
    from repro.obs.events import total_order

    def at(mono: float, pid: int, seq: int) -> Event:
        return Event(kind="supervisor.tick", ts=0.0, mono=mono, pid=pid,
                     seq=seq)

    same_writer = [at(5.0, 7, 2), at(5.0, 7, 0), at(5.0, 7, 1)]
    assert [e.seq for e in total_order(same_writer)] == [0, 1, 2]

    across = [at(5.0, 9, 0), at(5.0, 7, 5), at(4.0, 9, 9)]
    ordered = total_order(across)
    assert [(e.mono, e.pid, e.seq) for e in ordered] \
        == [(4.0, 9, 9), (5.0, 7, 5), (5.0, 9, 0)]
