"""MetricsRegistry: counter/gauge/histogram semantics, null variant."""

from __future__ import annotations

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    series_name,
)


def test_counter_inc_and_default_amount() -> None:
    registry = MetricsRegistry()
    counter = registry.counter("work.items")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.counter_value("work.items") == 5


def test_instruments_memoized_by_name_and_labels() -> None:
    registry = MetricsRegistry()
    a = registry.counter("rpc.calls", method="eth_getCode")
    b = registry.counter("rpc.calls", method="eth_getCode")
    c = registry.counter("rpc.calls", method="eth_getStorageAt")
    assert a is b
    assert a is not c
    a.inc(3)
    c.inc(2)
    assert registry.counter_value("rpc.calls", method="eth_getCode") == 3
    assert registry.counter_total("rpc.calls") == 5
    assert len(registry.counters_named("rpc.calls")) == 2


def test_label_order_does_not_split_series() -> None:
    registry = MetricsRegistry()
    a = registry.counter("x", one="1", two="2")
    b = registry.counter("x", two="2", one="1")
    assert a is b


def test_counter_value_of_unknown_series_is_zero() -> None:
    registry = MetricsRegistry()
    assert registry.counter_value("never.touched") == 0
    assert registry.counter_total("never.touched") == 0


def test_gauge_set_and_high_water_mark() -> None:
    registry = MetricsRegistry()
    gauge = registry.gauge("monitor.poll_lag")
    gauge.set(7)
    gauge.set(2)
    assert gauge.value == 2
    depth = registry.gauge("evm.max_call_depth")
    depth.max(3)
    depth.max(1)     # lower values do not regress the mark
    assert depth.value == 3


def test_histogram_observe_mean_and_cumulative_buckets() -> None:
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", bounds=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert abs(histogram.mean - 6.05 / 4) < 1e-12
    buckets = histogram.cumulative_buckets()
    assert buckets[0] == (0.1, 1)             # only 0.05
    assert buckets[1] == (1.0, 3)             # + the two 0.5s
    assert buckets[-1] == (float("inf"), 4)   # overflow lands in +Inf


def test_histogram_default_bounds() -> None:
    registry = MetricsRegistry()
    histogram = registry.histogram("rpc.latency_seconds", method="eth_call")
    assert histogram.bounds == tuple(sorted(DEFAULT_BUCKETS))


def test_reset_zeroes_in_place_so_cached_refs_stay_valid() -> None:
    registry = MetricsRegistry()
    counter = registry.counter("c")
    gauge = registry.gauge("g")
    histogram = registry.histogram("h")
    counter.inc(9)
    gauge.set(9)
    histogram.observe(0.5)
    registry.reset()
    assert counter.value == 0 and gauge.value == 0
    assert histogram.count == 0 and histogram.sum == 0.0
    counter.inc()                       # the old handle still records
    assert registry.counter_value("c") == 1


def test_snapshot_uses_rendered_series_names() -> None:
    registry = MetricsRegistry()
    registry.counter("rpc.calls", method="eth_getCode").inc(2)
    registry.gauge("lag").set(4)
    registry.histogram("span.seconds", name="sweep").observe(0.25)
    snapshot = registry.snapshot()
    assert snapshot["counters"]['rpc.calls{method="eth_getCode"}'] == 2
    assert snapshot["gauges"]["lag"] == 4
    series = snapshot["histograms"]['span.seconds{name="sweep"}']
    assert series["count"] == 1
    assert series["buckets"]["+Inf"] == 1


def test_series_name_rendering() -> None:
    assert series_name("plain", ()) == "plain"
    assert (series_name("rpc.calls", (("method", "eth_getCode"),))
            == 'rpc.calls{method="eth_getCode"}')


def test_null_registry_records_nothing() -> None:
    null = NullRegistry()
    assert null.enabled is False
    counter = null.counter("anything", label="x")
    counter.inc(100)
    null.gauge("g").set(5)
    null.histogram("h").observe(1.0)
    assert counter.value == 0
    snapshot = null.snapshot()
    assert snapshot["counters"] == {} and snapshot["histograms"] == {}
    # All call sites share the same no-op instruments.
    assert null.counter("a") is null.counter("b")


def test_null_singleton_and_default_registry() -> None:
    assert NULL_REGISTRY.enabled is False
    assert isinstance(NULL_REGISTRY, NullRegistry)
    assert default_registry() is default_registry()
    assert default_registry().enabled is True


def test_state_round_trips_through_merge_state() -> None:
    source = MetricsRegistry()
    source.counter("rpc.calls", method="eth_getCode").inc(7)
    source.gauge("depth").set(4)
    source.histogram("lat", bounds=(0.1, 1.0)).observe(0.05)
    source.histogram("lat", bounds=(0.1, 1.0)).observe(0.5)

    target = MetricsRegistry()
    target.merge_state(source.state())
    assert target.counter_value("rpc.calls", method="eth_getCode") == 7
    assert target.gauge("depth").value == 4
    merged = target.histogram("lat", bounds=(0.1, 1.0))
    assert merged.count == 2 and merged.sum == 0.55
    assert merged.bucket_counts == [1, 1, 0]


def test_merge_sums_counters_and_keeps_gauge_high_water_mark() -> None:
    left, right = MetricsRegistry(), MetricsRegistry()
    left.counter("c").inc(3)
    left.gauge("g").set(10)
    right.counter("c").inc(4)
    right.gauge("g").set(2)
    merged = MetricsRegistry()
    merged.merge_from(left)
    merged.merge_from(right)
    assert merged.counter_value("c") == 7
    assert merged.gauge("g").value == 10


def test_merge_histograms_elementwise_when_bounds_match() -> None:
    left, right = MetricsRegistry(), MetricsRegistry()
    for value in (0.05, 0.5):
        left.histogram("lat", bounds=(0.1, 1.0)).observe(value)
    right.histogram("lat", bounds=(0.1, 1.0)).observe(5.0)  # +Inf bucket
    merged = MetricsRegistry()
    merged.merge_from(left)
    merged.merge_from(right)
    histogram = merged.histogram("lat", bounds=(0.1, 1.0))
    assert histogram.bucket_counts == [1, 1, 1]
    assert histogram.count == 3


def test_merge_with_mismatched_bounds_overflows_and_counts_it() -> None:
    target = MetricsRegistry()
    target.histogram("lat", bounds=(0.1, 1.0)).observe(0.05)
    foreign = MetricsRegistry()
    foreign.histogram("lat", bounds=(0.2, 2.0)).observe(0.15)
    # Instrument identity is (name, labels); the first-created bounds win,
    # so the foreign shard's tallies can only land in +Inf.
    target.merge_state(foreign.state())
    histogram = target.histogram("lat", bounds=(0.1, 1.0))
    assert histogram.count == 2
    assert histogram.bucket_counts[-1] == 1
    assert target.counter_value("obs.histogram_bound_mismatches",
                                name="lat") == 1


def test_merge_with_disjoint_label_sets_keeps_series_apart() -> None:
    """Shards that only ever touched different label values must merge
    into distinct series, never cross-pollinate each other's tallies."""
    left, right = MetricsRegistry(), MetricsRegistry()
    left.counter("rpc.calls", method="eth_getCode").inc(3)
    left.gauge("lag", shard="0").max(0.7)
    right.counter("rpc.calls", method="eth_getStorageAt").inc(5)
    right.counter("pipeline.quarantined", cause="worker-crash").inc(1)
    right.gauge("lag", shard="1").max(0.2)
    merged = MetricsRegistry()
    merged.merge_from(left)
    merged.merge_from(right)
    assert merged.counter_value("rpc.calls", method="eth_getCode") == 3
    assert merged.counter_value("rpc.calls", method="eth_getStorageAt") == 5
    assert merged.counter_total("rpc.calls") == 8
    assert merged.counter_value("pipeline.quarantined",
                                cause="worker-crash") == 1
    assert merged.gauge("lag", shard="0").value == 0.7
    assert merged.gauge("lag", shard="1").value == 0.2
    assert len(merged.counters_named("rpc.calls")) == 2


def test_heartbeat_lag_gauge_merges_as_cross_process_high_water() -> None:
    """Each supervisor attempt records its worst heartbeat lag; the
    merged registry must report the worst across all of them, not the
    last one merged (the sweep-level 'how stale did it ever get')."""
    attempts = []
    for worst in (0.3, 2.9, 1.1):
        registry = MetricsRegistry()
        gauge = registry.gauge("parallel.heartbeat_lag_seconds")
        gauge.max(worst * 0.5)      # lag climbs within an attempt...
        gauge.max(worst)            # ...to that attempt's worst reading
        attempts.append(registry.state())
    merged = MetricsRegistry()
    for state in attempts:
        merged.merge_state(state)
    assert merged.gauge("parallel.heartbeat_lag_seconds").value == 2.9


def test_merge_into_null_registry_is_a_no_op() -> None:
    source = MetricsRegistry()
    source.counter("c").inc(5)
    null = NullRegistry()
    null.merge_from(source)
    assert null.snapshot()["counters"] == {}
