"""ArchiveNode metering and the ApiCallCounter compatibility shim."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.chain.node import ApiCallCounter, ArchiveNode
from repro.lang import compile_contract, stdlib
from repro.obs import NULL_REGISTRY, MetricsRegistry

from tests.conftest import ALICE


def _deployed(chain: Blockchain) -> bytes:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    return chain.deploy(ALICE, compiled.init_code).created_address


def test_standalone_shim_preserves_legacy_surface() -> None:
    counter = ApiCallCounter()
    counter.bump("eth_getCode")
    counter.bump("eth_getCode")
    counter.bump("eth_call")
    assert counter.get("eth_getCode") == 2
    assert counter.get("eth_never_called") == 0
    assert counter.total() == 3
    assert counter.counts == {"eth_getCode": 2, "eth_call": 1}
    counter.reset()
    assert counter.total() == 0
    assert counter.counts == {}


def test_shim_and_registry_always_agree(chain: Blockchain) -> None:
    address = _deployed(chain)
    node = ArchiveNode(chain)
    node.get_code(address)
    node.get_storage_at(address, 0)
    node.get_storage_at(address, 1)
    assert (node.api_calls.get("eth_getCode")
            == node.metrics.counter_value("rpc.calls", method="eth_getCode")
            == 1)
    assert (node.api_calls.get("eth_getStorageAt")
            == node.metrics.counter_value("rpc.calls",
                                          method="eth_getStorageAt")
            == 2)
    # Bumps through the shim land in the same registry series.
    node.api_calls.bump("eth_getCode")
    assert node.metrics.counter_value("rpc.calls", method="eth_getCode") == 2


def test_node_latency_histograms_track_call_counts(chain: Blockchain) -> None:
    address = _deployed(chain)
    node = ArchiveNode(chain)
    node.get_code(address)
    node.get_storage_at(address, 0)
    node.get_storage_at(address, 1, chain.latest_block_number)
    latency = node.metrics.histogram("rpc.latency_seconds",
                                     method="eth_getStorageAt")
    assert latency.count == node.api_calls.get("eth_getStorageAt") == 2
    assert latency.sum > 0
    assert node.metrics.histogram("rpc.latency_seconds",
                                  method="eth_getCode").count == 1


def test_nodes_have_isolated_registries_by_default(chain: Blockchain) -> None:
    address = _deployed(chain)
    first = ArchiveNode(chain)
    second = ArchiveNode(chain)
    first.get_code(address)
    assert first.api_calls.get("eth_getCode") == 1
    assert second.api_calls.get("eth_getCode") == 0


def test_shared_and_null_registries_are_injectable(chain: Blockchain) -> None:
    address = _deployed(chain)
    shared = MetricsRegistry()
    first = ArchiveNode(chain, metrics=shared)
    second = ArchiveNode(chain, metrics=shared)
    first.get_code(address)
    second.get_code(address)
    assert shared.counter_value("rpc.calls", method="eth_getCode") == 2

    silent = ArchiveNode(chain, metrics=NULL_REGISTRY)
    silent.get_code(address)
    silent.call(address, b"")
    assert silent.api_calls.total() == 0
    assert silent.metrics.snapshot()["counters"] == {}
