"""Word/address conversion helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import hexutil

WORDS = st.integers(min_value=0, max_value=hexutil.WORD_MASK)
SIGNED = st.integers(min_value=-(1 << 255), max_value=(1 << 255) - 1)


@given(WORDS)
def test_word_bytes_roundtrip(word: int) -> None:
    assert hexutil.bytes_to_word(hexutil.word_to_bytes(word)) == word


@given(SIGNED)
def test_signed_roundtrip(value: int) -> None:
    assert hexutil.to_signed(hexutil.from_signed(value)) == value


@given(WORDS)
def test_to_signed_range(word: int) -> None:
    signed = hexutil.to_signed(word)
    assert -(1 << 255) <= signed < (1 << 255)


def test_to_word_truncates() -> None:
    assert hexutil.to_word(1 << 256) == 0
    assert hexutil.to_word((1 << 256) + 5) == 5


@given(st.binary(min_size=20, max_size=20))
def test_address_word_roundtrip(address: bytes) -> None:
    assert hexutil.word_to_address(hexutil.address_to_word(address)) == address


def test_word_to_address_takes_low_20_bytes() -> None:
    word = int.from_bytes(b"\x11" * 12 + b"\x22" * 20, "big")
    assert hexutil.word_to_address(word) == b"\x22" * 20


def test_parse_address_formats() -> None:
    addr = b"\xab" * 20
    assert hexutil.parse_address("0x" + "ab" * 20) == addr
    assert hexutil.parse_address("AB" * 20) == addr
    assert hexutil.parse_address(addr) == addr


def test_parse_address_rejects_wrong_length() -> None:
    with pytest.raises(ValueError):
        hexutil.parse_address("0x1234")
    with pytest.raises(ValueError):
        hexutil.parse_address(b"\x00" * 19)


def test_format_roundtrip() -> None:
    addr = bytes(range(20))
    assert hexutil.parse_address(hexutil.format_address(addr)) == addr


@given(st.integers(min_value=0, max_value=10_000))
def test_ceil32(length: int) -> None:
    rounded = hexutil.ceil32(length)
    assert rounded % 32 == 0
    assert rounded >= length
    assert rounded - length < 32


def test_bytes_to_word_rejects_oversize() -> None:
    with pytest.raises(ValueError):
        hexutil.bytes_to_word(b"\x00" * 33)


def test_address_to_word_rejects_wrong_length() -> None:
    with pytest.raises(ValueError):
        hexutil.address_to_word(b"\x00" * 21)
