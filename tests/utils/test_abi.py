"""ABI selectors and the elementary-type codec."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import abi


def test_selector_matches_paper_example() -> None:
    assert abi.function_selector("free_ether_withdrawal()").hex() == "df4a3106"


def test_selector_known_erc20() -> None:
    assert abi.function_selector("transfer(address,uint256)").hex() == "a9059cbb"
    assert abi.function_selector("approve(address,uint256)").hex() == "095ea7b3"


def test_parse_prototype() -> None:
    name, args = abi.parse_prototype("transfer(address,uint256)")
    assert name == "transfer"
    assert args == ["address", "uint256"]


def test_parse_prototype_no_args() -> None:
    assert abi.parse_prototype("ping()") == ("ping", [])


def test_parse_prototype_rejects_garbage() -> None:
    with pytest.raises(ValueError):
        abi.parse_prototype("not a prototype")


def test_encode_call_layout() -> None:
    data = abi.encode_call("transfer(address,uint256)", [b"\x11" * 20, 500])
    assert data[:4] == abi.function_selector("transfer(address,uint256)")
    assert len(data) == 4 + 64
    assert data[4:36] == b"\x00" * 12 + b"\x11" * 20
    assert int.from_bytes(data[36:68], "big") == 500


def test_encode_bool_and_bytes4() -> None:
    encoded = abi.encode_arguments(["bool", "bytes4"], [True, b"\xde\xad\xbe\xef"])
    assert int.from_bytes(encoded[:32], "big") == 1
    assert encoded[32:36] == b"\xde\xad\xbe\xef"  # left-aligned
    assert encoded[36:64] == b"\x00" * 28


def test_encode_dynamic_bytes_head_tail() -> None:
    encoded = abi.encode_arguments(["uint256", "bytes"], [7, b"xyz"])
    assert int.from_bytes(encoded[:32], "big") == 7
    offset = int.from_bytes(encoded[32:64], "big")
    assert offset == 64
    assert int.from_bytes(encoded[64:96], "big") == 3
    assert encoded[96:99] == b"xyz"


def test_encode_rejects_out_of_range() -> None:
    with pytest.raises(ValueError):
        abi.encode_arguments(["uint8"], [256])
    with pytest.raises(ValueError):
        abi.encode_arguments(["int8"], [128])


def test_encode_rejects_arity_mismatch() -> None:
    with pytest.raises(ValueError):
        abi.encode_arguments(["uint256"], [])


@given(st.integers(min_value=0, max_value=(1 << 256) - 1))
def test_uint256_roundtrip(value: int) -> None:
    encoded = abi.encode_arguments(["uint256"], [value])
    assert abi.decode_arguments(["uint256"], encoded) == [value]


@given(st.integers(min_value=-(1 << 255), max_value=(1 << 255) - 1))
def test_int256_roundtrip(value: int) -> None:
    encoded = abi.encode_arguments(["int256"], [value])
    assert abi.decode_arguments(["int256"], encoded) == [value]


@given(st.binary(min_size=20, max_size=20))
def test_address_roundtrip(address: bytes) -> None:
    encoded = abi.encode_arguments(["address"], [address])
    assert abi.decode_arguments(["address"], encoded) == [address]


@given(st.booleans())
def test_bool_roundtrip(flag: bool) -> None:
    encoded = abi.encode_arguments(["bool"], [flag])
    assert abi.decode_arguments(["bool"], encoded) == [flag]


@given(st.binary(max_size=100))
def test_dynamic_bytes_roundtrip(payload: bytes) -> None:
    encoded = abi.encode_arguments(["bytes"], [payload])
    assert abi.decode_arguments(["bytes"], encoded) == [payload]


@given(st.text(alphabet=st.characters(codec="utf-8"), max_size=60))
def test_string_roundtrip(text: str) -> None:
    encoded = abi.encode_arguments(["string"], [text])
    assert abi.decode_arguments(["string"], encoded) == [text]


@given(st.integers(min_value=0, max_value=(1 << 256) - 1),
       st.binary(min_size=20, max_size=20),
       st.booleans())
def test_mixed_static_tuple_roundtrip(number: int, address: bytes,
                                      flag: bool) -> None:
    types = ["uint256", "address", "bool"]
    encoded = abi.encode_arguments(types, [number, address, flag])
    assert abi.decode_arguments(types, encoded) == [number, address, flag]
