"""RLP encoding (only what CREATE address derivation needs)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.utils import rlp
from repro.utils.keccak import keccak256


def test_single_byte_below_0x80_is_itself() -> None:
    assert rlp.encode_bytes(b"\x05") == b"\x05"
    assert rlp.encode_bytes(b"\x7f") == b"\x7f"


def test_single_byte_at_0x80_gets_prefix() -> None:
    assert rlp.encode_bytes(b"\x80") == b"\x81\x80"


def test_empty_bytes() -> None:
    assert rlp.encode_bytes(b"") == b"\x80"


def test_short_string() -> None:
    assert rlp.encode_bytes(b"dog") == b"\x83dog"


def test_long_string_prefix() -> None:
    data = b"a" * 56
    encoded = rlp.encode_bytes(data)
    assert encoded[0] == 0xB8
    assert encoded[1] == 56
    assert encoded[2:] == data


def test_zero_int_is_empty_string() -> None:
    assert rlp.encode_int(0) == b"\x80"


def test_int_no_leading_zeros() -> None:
    assert rlp.encode_int(1) == b"\x01"
    assert rlp.encode_int(0x0400) == b"\x82\x04\x00"


def test_list_encoding() -> None:
    encoded = rlp.encode_list([rlp.encode_bytes(b"cat"), rlp.encode_bytes(b"dog")])
    assert encoded == b"\xc8\x83cat\x83dog"


def test_known_create_address() -> None:
    """CREATE address of the zero account at nonce 0 (well-known value)."""
    preimage = rlp.encode_list([
        rlp.encode_bytes(b"\x00" * 20), rlp.encode_int(0)])
    address = keccak256(preimage)[12:]
    assert address.hex() == "bd770416a3345f91e4b34576cb804a576fa48eb1"


@given(st.integers(min_value=0, max_value=2 ** 64))
def test_int_encoding_is_minimal(value: int) -> None:
    encoded = rlp.encode_int(value)
    if value == 0:
        assert encoded == b"\x80"
    elif value < 0x80:
        assert encoded == bytes([value])
    else:
        assert encoded[0] >= 0x81


@given(st.binary(max_size=200))
def test_bytes_encoding_contains_payload(data: bytes) -> None:
    encoded = rlp.encode_bytes(data)
    assert encoded.endswith(data)
    if len(data) != 1 or data[0] >= 0x80:
        assert len(encoded) > len(data)
