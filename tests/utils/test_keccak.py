"""Keccak-256 against published vectors and structural properties."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.keccak import keccak256, keccak256_hex

# Published Keccak-256 (pre-NIST padding) test vectors.
KNOWN_VECTORS = [
    (b"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"),
    (b"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"),
    (b"testing", "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02"),
    (
        b"The quick brown fox jumps over the lazy dog",
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
    ),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS)
def test_known_vectors(message: bytes, expected: str) -> None:
    assert keccak256_hex(message) == expected


def test_ethereum_function_selectors() -> None:
    """The selectors quoted in the paper and the ERC-20 standard."""
    assert keccak256(b"free_ether_withdrawal()")[:4].hex() == "df4a3106"
    assert keccak256(b"transfer(address,uint256)")[:4].hex() == "a9059cbb"
    assert keccak256(b"balanceOf(address)")[:4].hex() == "70a08231"


def test_differs_from_nist_sha3() -> None:
    """Ethereum Keccak uses 0x01 padding, NIST SHA-3 uses 0x06."""
    assert keccak256(b"") != hashlib.sha3_256(b"").digest()


def test_digest_is_32_bytes() -> None:
    assert len(keccak256(b"x")) == 32


def test_rate_boundary_lengths() -> None:
    """Messages around the 136-byte rate exercise the multi-block path."""
    digests = {keccak256(b"a" * n) for n in (135, 136, 137, 271, 272, 273)}
    assert len(digests) == 6  # all distinct


@given(st.binary(max_size=512))
@settings(max_examples=200)
def test_deterministic(data: bytes) -> None:
    assert keccak256(data) == keccak256(data)


@given(st.binary(max_size=256), st.binary(min_size=1, max_size=8))
def test_collision_resistant_on_small_perturbations(data: bytes,
                                                    suffix: bytes) -> None:
    assert keccak256(data) != keccak256(data + suffix)


@given(st.binary(max_size=600))
def test_digest_always_32_bytes(data: bytes) -> None:
    assert len(keccak256(data)) == 32


def test_eip1967_slot_constant() -> None:
    """The well-known EIP-1967 implementation slot value."""
    slot = int.from_bytes(keccak256(b"eip1967.proxy.implementation"), "big") - 1
    assert hex(slot) == (
        "0x360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc"
    )
