"""ArchiveNode facade, SourceRegistry, ContractDataset."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.chain.dataset import ContractDataset
from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.lang import compile_contract, contract_source_of, stdlib
from repro.utils import encode_call

from tests.conftest import ALICE, BOB


def _deployed_wallet(chain: Blockchain):
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    address = chain.deploy(ALICE, compiled.init_code).created_address
    return address, compiled


def test_node_reads_and_counts(chain: Blockchain) -> None:
    address, compiled = _deployed_wallet(chain)
    node = ArchiveNode(chain)
    assert node.get_code(address) == compiled.runtime_code
    assert node.get_storage_at(address, 0) != 0
    assert node.api_calls.get("eth_getCode") == 1
    assert node.api_calls.get("eth_getStorageAt") == 1
    node.api_calls.reset()
    assert node.api_calls.total() == 0


def test_node_historical_storage(chain: Blockchain) -> None:
    logic = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("L", ALICE)).init_code
    ).created_address
    proxy = chain.deploy(
        ALICE, compile_contract(stdlib.storage_proxy("P", logic, ALICE)).init_code
    ).created_address
    deploy_block = chain.latest_block_number
    other = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("L2", ALICE)).init_code
    ).created_address
    chain.transact(ALICE, proxy,
                   encode_call("setImplementation(address)", [other]))
    node = ArchiveNode(chain)
    before = node.get_storage_at(proxy, 1, deploy_block)
    after = node.get_storage_at(proxy, 1, chain.latest_block_number)
    assert before != after
    assert after == int.from_bytes(other, "big")


def test_node_is_alive(chain: Blockchain) -> None:
    address, _ = _deployed_wallet(chain)
    node = ArchiveNode(chain)
    assert node.is_alive(address)
    assert not node.is_alive(b"\x99" * 20)


def test_node_call(chain: Blockchain) -> None:
    address, _ = _deployed_wallet(chain)
    node = ArchiveNode(chain)
    result = node.call(address, encode_call("ownerOf()"))
    assert result.success
    assert result.output[-20:] == ALICE


def test_registry_by_address_and_codehash(chain: Blockchain) -> None:
    address, compiled = _deployed_wallet(chain)
    registry = SourceRegistry()
    source = contract_source_of(compiled.contract)
    registry.verify(address, source, compiled.runtime_code)

    assert registry.has_source(address)
    assert registry.get_source(address) is source
    # Propagation by identical bytecode (§7.1): another deployment of the
    # same contract resolves without explicit verification.
    clone = chain.deploy(ALICE, compiled.init_code).created_address
    assert not registry.has_source(clone)
    assert registry.resolve(clone, compiled.runtime_code) is source
    assert registry.resolve(b"\x42" * 20, b"\x01\x02") is None
    assert len(registry) == 1


def test_contract_source_fields() -> None:
    contract = stdlib.storage_proxy("P", b"\x11" * 20, ALICE)
    source = contract_source_of(contract)
    assert source.contract_name == "P"
    assert "setImplementation(address)" in source.function_prototypes
    assert [v.name for v in source.storage_variables] == ["owner", "logic"]
    assert source.has_fallback_delegatecall


def test_wallet_source_has_no_fallback_delegatecall() -> None:
    source = contract_source_of(stdlib.simple_wallet("W", ALICE))
    assert not source.has_fallback_delegatecall


def test_dataset_scan_chain(chain: Blockchain) -> None:
    address, _ = _deployed_wallet(chain)
    second, _ = _deployed_wallet(chain)
    dataset = ContractDataset.scan_chain(chain)
    assert address in dataset
    assert second in dataset
    assert dataset.deploy_block_of(address) < dataset.deploy_block_of(second)
    assert len(dataset.records()) == len(dataset)


def test_dataset_explicit_add() -> None:
    dataset = ContractDataset()
    dataset.add(b"\x01" * 20, 5, ALICE)
    assert dataset.get(b"\x01" * 20).deployer == ALICE
    assert dataset.addresses() == [b"\x01" * 20]
    try:
        dataset.deploy_block_of(b"\x02" * 20)
        raise AssertionError("expected KeyError")
    except KeyError:
        pass


def test_dataset_scan_includes_internal_creates(chain: Blockchain) -> None:
    """Contracts deployed by contracts (factories) are catalogued too."""
    # Factory: CREATE an empty contract when poked.
    from repro.evm import opcodes as op
    from tests.evm.helpers import asm, push
    factory_runtime = asm(push(0), push(0), push(0), op.CREATE, op.POP, op.STOP)
    factory = chain.deploy(
        ALICE, stdlib.raw_deploy_init(factory_runtime)).created_address
    receipt = chain.transact(BOB, factory, b"")
    assert receipt.success
    assert receipt.internal_creates
    dataset = ContractDataset.scan_chain(chain)
    created = receipt.internal_creates[0].new_address
    assert created in dataset
