"""Blockchain: transactions, receipts, block clock, faucet, eth_call."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain, Transaction
from repro.lang import compile_contract, stdlib
from repro.utils import encode_call

from tests.conftest import ALICE, BOB, ETHER


def test_genesis_block() -> None:
    chain = Blockchain()
    assert chain.latest_block_number == 0
    assert chain.blocks[0].timestamp == chain.genesis_timestamp


def test_year_mapping_matches_mainnet_era() -> None:
    chain = Blockchain()
    assert chain.year_of(0) == 2015
    block_2020 = chain.first_block_of_year(2020)
    assert chain.year_of(block_2020) == 2020
    assert chain.year_of(block_2020 - 1) == 2019


def test_advance_to_block() -> None:
    chain = Blockchain()
    chain.advance_to_block(500)
    assert chain.latest_block_number == 500
    chain.advance_to_block(100)  # never goes backwards
    assert chain.latest_block_number == 500


def test_fund_and_transfer(chain: Blockchain) -> None:
    receipt = chain.send_transaction(Transaction(
        sender=ALICE, to=BOB, value=5 * ETHER))
    assert receipt.success
    assert chain.state.get_balance(BOB) >= 5 * ETHER


def test_each_transaction_seals_a_block(chain: Blockchain) -> None:
    start = chain.latest_block_number
    chain.transact(ALICE, BOB, b"")
    chain.transact(ALICE, BOB, b"")
    assert chain.latest_block_number == start + 2


def test_deploy_returns_address_and_code(chain: Blockchain) -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    receipt = chain.deploy(ALICE, compiled.init_code)
    assert receipt.success
    assert receipt.created_address is not None
    assert chain.state.get_code(receipt.created_address) == compiled.runtime_code


def test_call_is_read_only(chain: Blockchain) -> None:
    compiled = compile_contract(stdlib.simple_token("T", ALICE))
    address = chain.deploy(ALICE, compiled.init_code).created_address
    blocks_before = chain.latest_block_number
    result = chain.call(address, encode_call("balanceOf(address)", [ALICE]))
    assert result.success
    assert int.from_bytes(result.output, "big") > 0
    assert chain.latest_block_number == blocks_before


def test_receipt_internal_calls(chain: Blockchain) -> None:
    logic = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", logic, ALICE)).init_code,
    ).created_address
    receipt = chain.transact(BOB, proxy, encode_call("deposit()"))
    assert receipt.success
    kinds = [event.kind for event in receipt.internal_calls]
    assert "DELEGATECALL" in kinds


def test_transactions_of_indexes_internal_targets(chain: Blockchain) -> None:
    logic = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", logic, ALICE)).init_code,
    ).created_address
    chain.transact(BOB, proxy, encode_call("deposit()"))
    touching_logic = chain.transactions_of(logic)
    assert any(receipt.transaction.to == proxy for receipt in touching_logic)


def test_has_transactions_excludes_deployment(chain: Blockchain) -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    address = chain.deploy(ALICE, compiled.init_code).created_address
    assert not chain.has_transactions(address)  # deployment doesn't count
    chain.transact(BOB, address, encode_call("deposit()"))
    assert chain.has_transactions(address)


def test_failed_transaction_rolls_back_state(chain: Blockchain) -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    address = chain.deploy(ALICE, compiled.init_code).created_address
    receipt = chain.transact(
        BOB, address, encode_call("withdraw(uint256)", [1]))  # BOB not owner
    assert not receipt.success
    assert receipt.error == "revert"


def test_block_context_carries_block_values(chain: Blockchain) -> None:
    chain.advance_to_block(1_000_000)
    context = chain.block_context()
    assert context.number == 1_000_000
    assert context.timestamp == chain.timestamp_of(1_000_000)
