"""Multi-endpoint failover: sticky primary, probation, health scoring.

The guarantee under test is the ``reorg-smoke`` gate's failover leg in
miniature: with one healthy backend in the fleet, a primary outage loses
zero reads — every answer still matches the ground-truth archive.
"""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.failover import (
    DEFAULT_PROBATION_S,
    EndpointHealth,
    FailoverNode,
    build_failover_node,
)
from repro.chain.faults import OUTAGE, FaultPlan, FaultRule, FaultyNode
from repro.chain.node import ArchiveNode
from repro.chain.resilient import RetryPolicy
from repro.errors import ConfigurationError, DeadlineExceeded
from repro.obs.events import ENDPOINT_FAILOVER, EventRecorder
from repro.lang import compile_contract, stdlib

from tests.conftest import ALICE


class _Sink:
    def __init__(self) -> None:
        self.events = []

    def on_event(self, event) -> None:
        self.events.append(event)


def _world(chain: Blockchain) -> bytes:
    receipt = chain.deploy(ALICE, compile_contract(
        stdlib.simple_wallet("W", ALICE)).init_code)
    assert receipt.success
    return receipt.created_address


def _dead_primary_fleet(chain: Blockchain, sink: _Sink | None = None,
                        ) -> FailoverNode:
    """Endpoint 0 is in a sustained outage; endpoint 1 is healthy."""
    archive = ArchiveNode(chain)
    down = FaultyNode(ArchiveNode(chain, metrics=archive.metrics),
                      FaultPlan(rules=[FaultRule(OUTAGE, window=(0, 10 ** 6))]))
    events = EventRecorder(sinks=(sink,)) if sink is not None else None
    return FailoverNode([down, archive],
                        policy=RetryPolicy(max_attempts=2), events=events)


# ---------------------------------------------------------------- happy path
def test_healthy_fleet_sticks_to_the_primary(chain: Blockchain) -> None:
    wallet = _world(chain)
    node = build_failover_node(ArchiveNode(chain), 3)
    for _ in range(5):
        assert node.get_code(wallet) == ArchiveNode(chain).get_code(wallet)
    assert node.primary == 0
    assert node.endpoints == 3
    assert node.endpoint_health() == [1.0, 1.0, 1.0]
    assert node.metrics.counter_total("chain.failover_switches") == 0


def test_health_score_is_optimistic_before_evidence() -> None:
    health = EndpointHealth()
    assert health.score == 1.0
    health.failures = 1
    assert health.score == 0.0
    health.successes = 3
    assert health.score == pytest.approx(0.75)
    assert not health.on_probation(0.0)
    health.probation_until = 10.0
    assert health.on_probation(9.9) and not health.on_probation(10.0)


# ------------------------------------------------------------------ failover
def test_primary_outage_fails_over_without_losing_the_read(
        chain: Blockchain) -> None:
    wallet = _world(chain)
    sink = _Sink()
    node = _dead_primary_fleet(chain, sink)
    truth = ArchiveNode(chain)

    assert node.get_code(wallet) == truth.get_code(wallet)
    assert node.primary == 1            # switched and stayed
    assert node.metrics.counter_total("chain.failover_switches") == 1
    assert node.endpoint_health()[0] < 1.0
    assert node.endpoint_health()[1] == 1.0

    switches = [event for event in sink.events
                if event.kind == ENDPOINT_FAILOVER]
    assert len(switches) == 1
    assert switches[0].attrs["previous"] == 0
    assert switches[0].attrs["to"] == 1


def test_failover_is_sticky_across_subsequent_reads(
        chain: Blockchain) -> None:
    wallet = _world(chain)
    node = _dead_primary_fleet(chain)
    for _ in range(10):
        node.get_code(wallet)
    # One switch, not one per read: the new primary is sticky while the
    # old one sits on probation (and keeps losing the health contest
    # afterwards).
    assert node.metrics.counter_total("chain.failover_switches") == 1
    assert node.primary == 1


def test_every_endpoint_down_surfaces_the_last_error(
        chain: Blockchain) -> None:
    wallet = _world(chain)
    archive = ArchiveNode(chain)
    plan = FaultPlan(rules=[FaultRule(OUTAGE, window=(0, 10 ** 6))])
    node = FailoverNode(
        [FaultyNode(ArchiveNode(chain, metrics=archive.metrics), plan),
         FaultyNode(ArchiveNode(chain, metrics=archive.metrics), plan)],
        policy=RetryPolicy(max_attempts=2))
    with pytest.raises(DeadlineExceeded):
        node.get_code(wallet)
    assert all(score < 1.0 for score in node.endpoint_health())


def test_health_gauges_track_scores(chain: Blockchain) -> None:
    wallet = _world(chain)
    node = _dead_primary_fleet(chain)
    node.get_code(wallet)
    gauge = node.metrics.gauge("chain.endpoint_health", endpoint="0")
    assert gauge.value < 1.0
    assert node.metrics.gauge("chain.endpoint_health",
                              endpoint="1").value == 1.0


# --------------------------------------------------------------- construction
def test_build_failover_node_rejects_zero_endpoints(
        chain: Blockchain) -> None:
    with pytest.raises(ConfigurationError):
        build_failover_node(ArchiveNode(chain), 0)
    with pytest.raises(ConfigurationError):
        FailoverNode([])


def test_build_failover_node_shares_chain_and_metrics(
        chain: Blockchain) -> None:
    base = ArchiveNode(chain)
    node = build_failover_node(base, 2)
    assert node.chain is chain
    assert node.metrics is base.metrics
    assert node.probation_s == DEFAULT_PROBATION_S


def test_build_failover_node_chaos_wraps_only_the_primary(
        chain: Blockchain) -> None:
    wallet = _world(chain)
    node = build_failover_node(ArchiveNode(chain), 2, chaos="outage")
    truth = ArchiveNode(chain)
    # The canned outage strikes endpoint 0 mid-sweep; the fleet absorbs
    # it — every read of a long scan still answers correctly.
    for _ in range(60):
        assert node.get_code(wallet) == truth.get_code(wallet)
        assert node.is_alive(wallet) is True
