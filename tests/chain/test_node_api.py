"""Shared NodeRPC conformance suite.

Every node class the repository declares as a :class:`repro.chain.api.NodeRPC`
conformer runs the *same* behavioral checks here, against the same little
world, so the three call surfaces (archive, resilient, faulty) cannot drift
apart: a missing method, a renamed parameter, or a divergent return value
fails the suite for exactly the class that broke it.
"""

from __future__ import annotations

import pytest

from repro.chain.api import NodeRPC
from repro.chain.blockchain import Blockchain
from repro.chain.failover import build_failover_node
from repro.chain.faults import FaultPlan, FaultyNode
from repro.chain.node import ArchiveNode
from repro.chain.resilient import ResilientNode
from repro.lang import compile_contract, stdlib
from repro.obs.registry import MetricsRegistry

from tests.conftest import ALICE


def _archive(chain: Blockchain) -> ArchiveNode:
    return ArchiveNode(chain)


def _resilient(chain: Blockchain) -> ResilientNode:
    return ResilientNode(ArchiveNode(chain), sleep=None)


def _faulty(chain: Blockchain) -> FaultyNode:
    # An empty plan: full wrapping machinery, zero injected behavior.
    return FaultyNode(ArchiveNode(chain), FaultPlan())


def _failover(chain: Blockchain):
    # Two healthy endpoints; reads route through the sticky primary.
    return build_failover_node(ArchiveNode(chain), 2)


CONFORMERS = {
    "ArchiveNode": _archive,
    "ResilientNode": _resilient,
    "FaultyNode": _faulty,
    "FailoverNode": _failover,
}


@pytest.fixture()
def world(chain: Blockchain):
    logic = chain.deploy(ALICE, compile_contract(
        stdlib.audius_logic()).init_code)
    proxy = chain.deploy(ALICE, compile_contract(
        stdlib.audius_proxy("AP", logic.created_address, ALICE)).init_code)
    assert logic.success and proxy.success
    return chain, logic.created_address, proxy.created_address


@pytest.fixture(params=sorted(CONFORMERS))
def node(request, world):
    chain, _, _ = world
    return CONFORMERS[request.param](chain)


def test_isinstance_of_the_runtime_checkable_protocol(node) -> None:
    assert isinstance(node, NodeRPC)


def test_every_protocol_member_is_present(node) -> None:
    members = (
        "metrics", "get_code", "get_storage_at", "call", "is_alive",
        "get_transaction_count", "get_balance", "get_logs",
        "transactions_of", "has_transactions", "year_of", "chain",
        "latest_block_number", "genesis_block_number",
    )
    for member in members:
        assert hasattr(node, member), f"missing NodeRPC member {member!r}"


def test_metrics_is_a_registry(node) -> None:
    assert isinstance(node.metrics, MetricsRegistry)


def test_reads_match_the_ground_truth_archive(node, world) -> None:
    chain, logic, proxy = world
    truth = ArchiveNode(chain)
    assert node.get_code(proxy) == truth.get_code(proxy)
    assert node.get_code(proxy, chain.latest_block_number) == \
        truth.get_code(proxy, chain.latest_block_number)
    assert node.get_storage_at(proxy, 0) == truth.get_storage_at(proxy, 0)
    assert node.get_balance(proxy) == truth.get_balance(proxy)
    assert node.is_alive(proxy) is True
    assert node.is_alive(b"\x00" * 20) is False


def test_call_emulates_like_the_archive(node, world) -> None:
    chain, logic, proxy = world
    truth = ArchiveNode(chain)
    probe = b"\x12\x34\x56\x78" + b"\x00" * 64
    mine = node.call(proxy, probe)
    reference = truth.call(proxy, probe)
    assert mine.success == reference.success
    assert mine.output == reference.output


def test_transaction_history_views_agree(node, world) -> None:
    chain, logic, proxy = world
    truth = ArchiveNode(chain)
    assert node.get_transaction_count(proxy) == \
        truth.get_transaction_count(proxy)
    assert node.has_transactions(proxy) == truth.has_transactions(proxy)
    assert len(node.transactions_of(proxy)) == \
        node.get_transaction_count(proxy)


def test_chain_and_block_metadata_agree(node, world) -> None:
    chain, _, _ = world
    assert node.chain is chain
    assert node.latest_block_number == chain.latest_block_number
    assert node.genesis_block_number == 0
    assert node.year_of(chain.latest_block_number) == \
        chain.year_of(chain.latest_block_number)


def test_wrappers_nest_and_stay_conformant(world) -> None:
    chain, _, proxy = world
    stacked = ResilientNode(FaultyNode(ArchiveNode(chain), FaultPlan()),
                            sleep=None)
    assert isinstance(stacked, NodeRPC)
    assert stacked.get_code(proxy) == ArchiveNode(chain).get_code(proxy)
