"""Chain reorganizations: block hashing, :meth:`Blockchain.fork`, and the
``reorg`` fault kind that injects them into chaos sweeps."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.chain.faults import REORG, FaultPlan, FaultRule, FaultyNode, canned_plan
from repro.chain.node import ArchiveNode
from repro.lang import compile_contract, stdlib

from tests.conftest import ALICE, BOB, ETHER


def _deploy(chain: Blockchain, contract) -> bytes:
    receipt = chain.deploy(ALICE, compile_contract(contract).init_code)
    assert receipt.success
    return receipt.created_address


# ------------------------------------------------------------- block hashing
def test_blocks_hash_chain_through_parent_hashes(chain: Blockchain) -> None:
    _deploy(chain, stdlib.simple_wallet("W", ALICE))
    chain.transact(ALICE, BOB, b"")
    assert chain.blocks[0].parent_hash == b"\x00" * 32
    for previous, block in zip(chain.blocks, chain.blocks[1:]):
        assert block.parent_hash == previous.hash
        assert len(block.hash) == 32
    hashes = [block.hash for block in chain.blocks]
    assert len(set(hashes)) == len(hashes)


def test_block_hash_lookup_by_height(chain: Blockchain) -> None:
    _deploy(chain, stdlib.simple_wallet("W", ALICE))
    tip = chain.blocks[-1]
    assert chain.block_hash(tip.number) == tip.hash
    assert chain.block_hash(0) == chain.blocks[0].hash
    # Implicit empty heights have no record and therefore no hash.
    chain.advance_to_block(tip.number + 10)
    assert chain.block_hash(tip.number + 5) is None


# --------------------------------------------------------------------- fork
def test_fork_orphans_deployments_and_reverts_state(chain: Blockchain) -> None:
    survivor = _deploy(chain, stdlib.simple_wallet("Keep", ALICE))
    doomed = _deploy(chain, stdlib.simple_wallet("Gone", ALICE))
    chain.fund(doomed, 2 * ETHER)
    node = ArchiveNode(chain)
    assert node.is_alive(doomed)

    orphaned = chain.fork(1)          # the block holding the doomed deploy
    assert orphaned == [doomed]
    assert not node.is_alive(doomed)
    assert node.get_code(doomed) == b""
    assert node.get_balance(doomed) == 0
    assert node.is_alive(survivor)
    assert doomed not in chain.receipts_by_address


def test_fork_bumps_branch_nonce_so_replacements_hash_differently(
        chain: Blockchain) -> None:
    _deploy(chain, stdlib.simple_wallet("A", ALICE))
    height = chain.latest_block_number
    old_hash = chain.block_hash(height)
    chain.fork(1)
    _deploy(chain, stdlib.simple_wallet("A", ALICE))   # same height again
    assert chain.latest_block_number == height
    assert chain.block_hash(height) != old_hash


def test_fork_depth_clamps_to_undo_capacity(chain: Blockchain) -> None:
    for index in range(3):
        _deploy(chain, stdlib.simple_wallet(f"W{index}", ALICE))
    depth = chain.max_fork_depth
    assert 0 < depth <= len(chain.blocks)
    assert chain.fork(0) == []
    orphaned = chain.fork(10 ** 6)     # clamped, not an error
    assert len(orphaned) == 3
    assert chain.max_fork_depth == 0 or chain.max_fork_depth < depth


def test_fork_returns_factory_internal_creations(chain: Blockchain) -> None:
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    receipt = chain.deploy(
        ALICE, stdlib.raw_deploy_init(b"\x00"))  # keep heights moving
    assert receipt.success
    proxy_init = stdlib.minimal_proxy_init(wallet)
    deployed = chain.deploy(ALICE, proxy_init)
    assert deployed.success
    orphaned = chain.fork(1)
    assert orphaned == [deployed.created_address]


def test_forked_chain_keeps_accepting_blocks(chain: Blockchain) -> None:
    _deploy(chain, stdlib.simple_wallet("W", ALICE))
    chain.fork(1)
    replacement = _deploy(chain, stdlib.simple_wallet("R", ALICE))
    node = ArchiveNode(chain)
    assert node.is_alive(replacement)
    tip = chain.blocks[-1]
    assert tip.parent_hash == chain.blocks[-2].hash


# --------------------------------------------------------- reorg fault kind
def test_reorg_rule_fires_through_the_faulty_node(chain: Blockchain) -> None:
    doomed = _deploy(chain, stdlib.simple_wallet("Gone", ALICE))
    plan = FaultPlan(rules=[FaultRule(REORG, methods=("eth_getCode",),
                                      window=(0, 1), depth=1)])
    node = FaultyNode(ArchiveNode(chain), plan)
    node.get_code(doomed)              # triggers the fork, then answers
    assert not ArchiveNode(chain).is_alive(doomed)


def test_reorg_rule_fires_once_not_per_retry(chain: Blockchain) -> None:
    for index in range(4):
        _deploy(chain, stdlib.simple_wallet(f"W{index}", ALICE))
    blocks_before = len(chain.blocks)
    plan = FaultPlan(rules=[FaultRule(REORG, methods=("eth_getCode",),
                                      window=(0, 10), depth=1)])
    node = FaultyNode(ArchiveNode(chain), plan)
    target = chain.blocks[1].receipts[0].created_address
    for _ in range(5):
        node.get_code(target)
    # One fork per (rule, call) key — not one per matching window index.
    assert len(chain.blocks) == blocks_before - 1


def test_chain_reorg_canned_plan_exists() -> None:
    plan = canned_plan("chain-reorg", seed=1)
    assert any(rule.kind == REORG for rule in plan.rules)
