"""eth_getLogs, Upgraded-event recovery, and historical eth_call."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.node import ArchiveNode
from repro.core.logic_finder import (
    UPGRADED_EVENT_TOPIC,
    history_from_events,
    slot_change_points,
)
from repro.lang import compile_contract, stdlib
from repro.utils import encode_call

from tests.conftest import ALICE, BOB


def _upgradeable_1967(chain: Blockchain, upgrades: int):
    logics = [chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet(f"L{i}", ALICE)).init_code
    ).created_address for i in range(upgrades + 1)]
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.eip1967_proxy("P", logics[0], ALICE)).init_code
    ).created_address
    for logic in logics[1:]:
        receipt = chain.transact(
            ALICE, proxy, encode_call("upgradeTo(address)", [logic]))
        assert receipt.success
    return proxy, logics


def test_get_logs_filters(chain: Blockchain) -> None:
    token = chain.deploy(
        ALICE, compile_contract(stdlib.simple_token("T", ALICE)).init_code
    ).created_address
    chain.transact(ALICE, token,
                   encode_call("transfer(address,uint256)", [BOB, 5]))
    node = ArchiveNode(chain)
    all_logs = node.get_logs()
    assert all_logs
    by_address = node.get_logs(address=token)
    assert len(by_address) == 1
    assert node.get_logs(address=b"\x77" * 20) == []
    from repro.utils.keccak import keccak256
    topic = int.from_bytes(keccak256(b"Transfer(address,address,uint256)"),
                           "big")
    assert len(node.get_logs(topic=topic)) == 1
    assert node.get_logs(topic=1234) == []


def test_get_logs_block_range(chain: Blockchain) -> None:
    token = chain.deploy(
        ALICE, compile_contract(stdlib.simple_token("T", ALICE)).init_code
    ).created_address
    first = chain.transact(ALICE, token,
                           encode_call("transfer(address,uint256)", [BOB, 1]))
    second = chain.transact(ALICE, token,
                            encode_call("transfer(address,uint256)", [BOB, 1]))
    node = ArchiveNode(chain)
    early = node.get_logs(address=token, to_block=first.block_number)
    late = node.get_logs(address=token, from_block=second.block_number)
    assert len(early) == 1 and len(late) == 1
    assert early[0][0] == first.block_number
    assert late[0][0] == second.block_number


def test_upgraded_events_recover_history(chain: Blockchain) -> None:
    proxy, logics = _upgradeable_1967(chain, upgrades=3)
    node = ArchiveNode(chain)
    events = history_from_events(node, proxy)
    assert [logic for _, logic in events] == logics[1:]  # upgrades only
    blocks = [block for block, _ in events]
    assert blocks == sorted(blocks)


def test_event_history_misses_initial_and_nonstandard(chain: Blockchain) -> None:
    """The method's blind spots: the constructor-set implementation emits
    nothing, and non-emitting proxies are invisible — Algorithm 1 is not."""
    node = ArchiveNode(chain)
    # Initial implementation of a 1967 proxy: no event.
    proxy, logics = _upgradeable_1967(chain, upgrades=0)
    assert history_from_events(node, proxy) == []
    # Non-standard storage proxy: upgrades without any event.
    wallet = logics[0]
    other = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("X", ALICE)).init_code
    ).created_address
    silent = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("S", wallet, ALICE)).init_code
    ).created_address
    chain.transact(ALICE, silent,
                   encode_call("setImplementation(address)", [other]))
    assert history_from_events(node, silent) == []
    # ...while the storage-based recovery sees both values.
    changes = slot_change_points(node, silent, 1)
    assert len(changes) == 2


def test_upgraded_topic_constant() -> None:
    from repro.utils.keccak import keccak256
    assert UPGRADED_EVENT_TOPIC == int.from_bytes(
        keccak256(b"Upgraded(address)"), "big")


def test_historical_call(chain: Blockchain) -> None:
    """eth_call at a past height executes against the archived storage."""
    wallet_v1 = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    proxy, logics = _upgradeable_1967(chain, upgrades=1)
    del wallet_v1
    node = ArchiveNode(chain)
    # implementation slot before vs after the upgrade, via historical call
    # into the proxy is awkward (wallet logic); read the slot instead and
    # drive a direct historical call against the logic's ownerOf.
    from repro.lang.storage_layout import EIP1967_IMPLEMENTATION_SLOT
    deploy_block = node.get_logs(address=proxy)[0][0] - 1
    before = node.get_storage_at(proxy, EIP1967_IMPLEMENTATION_SLOT,
                                 deploy_block)
    after = node.get_storage_at(proxy, EIP1967_IMPLEMENTATION_SLOT)
    assert before != after

    result = node.call(logics[0], encode_call("ownerOf()"),
                       block_number=deploy_block)
    assert result.success
    assert result.output[-20:] == ALICE


def test_historical_call_before_deployment_is_empty(chain: Blockchain) -> None:
    wallet = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    node = ArchiveNode(chain)
    result = node.call(wallet, encode_call("ownerOf()"), block_number=0)
    assert result.success
    assert result.output == b""  # no code at height 0 → trivial success


def test_historical_view_is_read_only(chain: Blockchain) -> None:
    view = chain.state.view_at(0)
    with pytest.raises(TypeError):
        view.set_storage(b"\x01" * 20, 0, 1)
    with pytest.raises(TypeError):
        view.set_code(b"\x01" * 20, b"\x00")
