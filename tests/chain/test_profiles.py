"""Chain profiles (the §8.2 multi-chain extension)."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.profiles import (
    ARBITRUM,
    BSC,
    ETHEREUM,
    POLYGON,
    PRESETS,
    get_profile,
)
from repro.corpus.generator import generate_landscape
from repro.core import Proxion
from repro.evm import opcodes as op

from tests.conftest import ALICE
from tests.evm.helpers import asm, return_top


def test_presets_are_distinct() -> None:
    ids = {profile.chain_id for profile in PRESETS.values()}
    assert len(ids) == len(PRESETS) == 4


def test_get_profile() -> None:
    assert get_profile("polygon") is POLYGON
    with pytest.raises(ValueError):
        get_profile("dogechain")


def test_default_chain_is_ethereum() -> None:
    chain = Blockchain()
    assert chain.profile is ETHEREUM
    assert chain.block_context().chain_id == 1


def test_chainid_opcode_sees_profile() -> None:
    chain = Blockchain(profile=BSC)
    chain.fund(ALICE, 10 ** 20)
    from repro.lang import stdlib
    address = chain.deploy(ALICE, stdlib.raw_deploy_init(
        asm(op.CHAINID) + return_top())).created_address
    result = chain.call(address, b"")
    assert int.from_bytes(result.output, "big") == 56


def test_block_cadence_differs() -> None:
    ethereum = Blockchain(profile=ETHEREUM)
    arbitrum = Blockchain(profile=ARBITRUM)
    assert arbitrum.block_time < ethereum.block_time
    # A year spans many more blocks on a fast chain.
    assert (arbitrum.first_block_of_year(2023)
            > ethereum.first_block_of_year(2023) / 13)


def test_young_chain_has_no_early_years() -> None:
    landscape = generate_landscape(total=60, seed=1, chain_profile=ARBITRUM)
    years = {truth.deploy_year for truth in landscape.truths.values()}
    assert min(years) >= 2021  # Arbitrum genesis
    for address, truth in landscape.truths.items():
        block = landscape.dataset.deploy_block_of(address)
        assert landscape.chain.year_of(block) == truth.deploy_year


def test_pipeline_is_chain_agnostic() -> None:
    landscape = generate_landscape(total=80, seed=9, chain_profile=POLYGON)
    proxion = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset)
    report = proxion.analyze_all()
    detected = {a for a, r in report.analyses.items() if r.is_proxy}
    expected = {a for a, t in landscape.truths.items()
                if t.is_proxy and t.kind != "diamond"}
    assert expected <= detected
