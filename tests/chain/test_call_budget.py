"""The per-eth_call instruction ceiling: runaway bytecode cannot hang."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.chain.node import ArchiveNode
from repro.lang import compile_contract, stdlib

from tests.conftest import ALICE

ADDR = b"\x77" * 20

#: JUMPDEST; PUSH1 0; JUMP — the tightest possible infinite loop.
SPIN = bytes.fromhex("5b600056")


def test_runaway_call_terminates_as_emulation_failure(chain: Blockchain) -> None:
    chain.state.set_code(ADDR, SPIN)
    node = ArchiveNode(chain, call_instruction_budget=10_000)
    result = node.call(ADDR)
    assert not result.success
    assert result.error is not None
    assert result.error.startswith("ExecutionTimeout")
    assert node.metrics.counter_value("rpc.emulation_failures",
                                      cause="ExecutionTimeout",
                                      method="eth_call") == 1


def test_per_call_override_beats_the_node_budget(chain: Blockchain) -> None:
    chain.state.set_code(ADDR, SPIN)
    node = ArchiveNode(chain)          # default 2M-instruction ceiling
    result = node.call(ADDR, max_instructions=500)
    assert not result.success and result.error.startswith("ExecutionTimeout")


def test_historical_calls_respect_the_ceiling(chain: Blockchain) -> None:
    chain.state.set_code(ADDR, SPIN)
    height = chain.latest_block_number
    node = ArchiveNode(chain, call_instruction_budget=10_000)
    result = node.call(ADDR, block_number=height)
    assert not result.success and result.error.startswith("ExecutionTimeout")
    assert node.metrics.counter_value("rpc.emulation_failures",
                                      cause="ExecutionTimeout",
                                      method="eth_call") == 1


def test_legitimate_calls_are_unaffected(chain: Blockchain) -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    address = chain.deploy(ALICE, compiled.init_code).created_address
    node = ArchiveNode(chain)
    result = node.call(address, b"\x00" * 68)
    assert node.metrics.counter_value("rpc.emulation_failures",
                                      cause="ExecutionTimeout",
                                      method="eth_call") == 0
    # Reverts are clean negatives, never emulation failures.
    if not result.success:
        assert result.error == "revert"
