"""FaultPlan / FaultyNode semantics: determinism, scoping, accounting."""

from __future__ import annotations

import pytest

from repro.chain.faults import (
    CANNED_PLANS,
    LATENCY,
    OUTAGE,
    RATE_LIMIT,
    TRANSIENT,
    FaultPlan,
    FaultRule,
    FaultyNode,
    canned_plan,
)
from repro.errors import (
    ConfigurationError,
    NodeOutageError,
    RateLimitedError,
    TransientRpcError,
)
from repro.obs.registry import MetricsRegistry

ADDR = b"\x11" * 20
OTHER = b"\x22" * 20


class StubNode:
    """Minimal ArchiveNode-shaped object with sentinel return values."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    def get_code(self, address, block_number=None):
        return b"\xfe"

    def get_storage_at(self, address, slot, block_number=None):
        return 7

    def get_balance(self, address):
        return 42

    def is_alive(self, address):
        return True

    def has_transactions(self, address):
        return False

    def transactions_of(self, address):
        return []

    def get_logs(self, address=None, topic=None, from_block=None,
                 to_block=None):
        return []


def _strikes(node: FaultyNode, addresses: list[bytes]) -> list[bytes]:
    """Which addresses fail their first get_code under the node's plan."""
    stricken = []
    for address in addresses:
        try:
            node.get_code(address)
        except TransientRpcError:
            stricken.append(address)
    return stricken


def test_strike_decisions_are_seed_deterministic() -> None:
    addresses = [bytes([i]) * 20 for i in range(1, 60)]
    plan = FaultPlan((FaultRule(TRANSIENT, probability=0.4),), seed=3)
    first = _strikes(FaultyNode(StubNode(), plan), addresses)
    second = _strikes(FaultyNode(StubNode(), plan), addresses)
    assert first == second
    assert 0 < len(first) < len(addresses)

    other_seed = FaultPlan((FaultRule(TRANSIENT, probability=0.4),), seed=4)
    assert _strikes(FaultyNode(StubNode(), other_seed), addresses) != first


def test_strike_decisions_are_order_independent() -> None:
    addresses = [bytes([i]) * 20 for i in range(1, 40)]
    plan = FaultPlan((FaultRule(TRANSIENT, probability=0.5),), seed=9)
    forward = set(_strikes(FaultyNode(StubNode(), plan), addresses))
    backward = set(_strikes(FaultyNode(StubNode(), plan),
                            list(reversed(addresses))))
    assert forward == backward


def test_transient_fault_is_attempt_scoped() -> None:
    plan = FaultPlan((FaultRule(TRANSIENT, fail_attempts=2),), seed=0)
    node = FaultyNode(StubNode(), plan)
    with pytest.raises(TransientRpcError):
        node.get_code(ADDR)
    with pytest.raises(TransientRpcError):
        node.get_code(ADDR)
    assert node.get_code(ADDR) == b"\xfe"      # third attempt succeeds
    # A different request signature has its own attempt counter.
    with pytest.raises(TransientRpcError):
        node.get_code(OTHER)


def test_rate_limit_raises_the_specific_error() -> None:
    plan = FaultPlan((FaultRule(RATE_LIMIT),), seed=0)
    node = FaultyNode(StubNode(), plan)
    with pytest.raises(RateLimitedError):
        node.get_balance(ADDR)
    assert node.get_balance(ADDR) == 42


def test_rule_filters_by_method_and_address() -> None:
    plan = FaultPlan((FaultRule(TRANSIENT, methods=("eth_getStorageAt",),
                                addresses=(ADDR,)),), seed=0)
    node = FaultyNode(StubNode(), plan)
    assert node.get_code(ADDR) == b"\xfe"          # method not matched
    assert node.get_storage_at(OTHER, 0) == 7      # address not matched
    with pytest.raises(TransientRpcError):
        node.get_storage_at(ADDR, 0)


def test_sustained_outage_defeats_retries() -> None:
    plan = FaultPlan((FaultRule(OUTAGE, window=(2, 1 << 62)),), seed=0)
    node = FaultyNode(StubNode(), plan)
    assert node.get_code(ADDR) == b"\xfe"          # calls 0 and 1 pass
    assert node.get_code(ADDR) == b"\xfe"
    for _ in range(5):                             # every later attempt fails
        with pytest.raises(NodeOutageError):
            node.get_code(ADDR)


def test_flapping_outage_is_periodic() -> None:
    plan = FaultPlan((FaultRule(OUTAGE, outage_period=4, outage_width=1),),
                     seed=0)
    node = FaultyNode(StubNode(), plan)
    outcomes = []
    for _ in range(8):
        try:
            node.get_balance(ADDR)
            outcomes.append(True)
        except NodeOutageError:
            outcomes.append(False)
    assert outcomes == [False, True, True, True] * 2


def test_latency_is_accounted_and_optionally_slept() -> None:
    plan = FaultPlan((FaultRule(LATENCY, latency_s=0.005),), seed=0)
    node = FaultyNode(StubNode(), plan)           # default sleep=None
    node.get_code(ADDR)
    assert node.injected_latency_s == pytest.approx(0.005)
    assert node.metrics.counter_value(
        "faults.injected_latency_seconds") == pytest.approx(0.005)

    slept = []
    sleeper = FaultyNode(StubNode(), plan, sleep=slept.append)
    sleeper.get_code(ADDR)
    assert slept == [0.005]


def test_injection_metrics_by_kind_and_method() -> None:
    plan = FaultPlan((FaultRule(TRANSIENT, fail_attempts=1),), seed=0)
    node = FaultyNode(StubNode(), plan)
    with pytest.raises(TransientRpcError):
        node.get_code(ADDR)
    node.get_code(ADDR)
    assert node.metrics.counter_value("faults.injected", kind=TRANSIENT,
                                      method="eth_getCode") == 1
    assert node.injected_counts() == {TRANSIENT: 1}


def test_empty_plan_is_a_transparent_passthrough() -> None:
    node = FaultyNode(StubNode(), FaultPlan())
    assert node.get_code(ADDR) == b"\xfe"
    assert node.get_storage_at(ADDR, 3) == 7
    assert node.get_balance(ADDR) == 42
    assert node.is_alive(ADDR) is True
    assert node.has_transactions(ADDR) is False
    assert node.transactions_of(ADDR) == []
    assert node.get_logs() == []
    assert node.injected_counts() == {}


def test_unknown_kind_and_plan_raise_configuration_error() -> None:
    with pytest.raises(ConfigurationError):
        FaultRule("meteor-strike")
    with pytest.raises(ConfigurationError):
        canned_plan("nope")


def test_every_canned_plan_builds() -> None:
    for name in CANNED_PLANS:
        plan = canned_plan(name, seed=1)
        assert plan.rules
