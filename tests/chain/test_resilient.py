"""ResilientNode: backoff determinism, deadlines, circuit breaking."""

from __future__ import annotations

import pytest

from repro.chain.resilient import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    ResilientNode,
    RetryPolicy,
)
from repro.errors import CircuitOpen, DeadlineExceeded, TransientRpcError
from repro.obs.registry import MetricsRegistry

ADDR = b"\x33" * 20


class FlakyStub:
    """Fails the first ``failures`` get_code calls, then succeeds."""

    def __init__(self, failures: int = 0) -> None:
        self.metrics = MetricsRegistry()
        self.failures = failures
        self.calls = 0

    def get_code(self, address, block_number=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientRpcError("injected", method="eth_getCode",
                                    address=address)
        return b"\x01"


# ----------------------------------------------------------------- backoff
def test_backoff_is_deterministic_for_a_seed() -> None:
    first = ResilientNode(FlakyStub(), seed=7, sleep=None)
    second = ResilientNode(FlakyStub(), seed=7, sleep=None)
    assert first.backoff_delays(8) == second.backoff_delays(8)
    assert ResilientNode(FlakyStub(), seed=8,
                         sleep=None).backoff_delays(8) != \
        first.backoff_delays(8)


def test_backoff_respects_the_jitter_ceiling() -> None:
    policy = RetryPolicy(base_delay_s=0.02, max_delay_s=0.1, multiplier=2.0)
    node = ResilientNode(FlakyStub(), policy=policy, seed=1, sleep=None)
    for attempt, delay in enumerate(node.backoff_delays(10)):
        assert 0 <= delay <= policy.backoff_ceiling(attempt)
        assert delay <= policy.max_delay_s


def test_retries_absorb_transient_failures() -> None:
    stub = FlakyStub(failures=2)
    node = ResilientNode(stub, seed=0, sleep=None)
    assert node.get_code(ADDR) == b"\x01"
    assert stub.calls == 3
    assert node.metrics.counter_value("resilience.retries",
                                      method="eth_getCode") == 2
    assert node.metrics.counter_value("resilience.backoff_seconds",
                                      method="eth_getCode") >= 0


def test_deadline_exceeded_after_max_attempts() -> None:
    stub = FlakyStub(failures=100)
    node = ResilientNode(stub, policy=RetryPolicy(max_attempts=3),
                         seed=0, sleep=None)
    with pytest.raises(DeadlineExceeded) as excinfo:
        node.get_code(ADDR)
    assert stub.calls == 3
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value.__cause__, TransientRpcError)
    assert node.metrics.counter_value("resilience.deadline_exceeded",
                                      method="eth_getCode") == 1


def test_deadline_budget_caps_total_time() -> None:
    # A tiny deadline budget trips before max_attempts does.
    stub = FlakyStub(failures=100)
    policy = RetryPolicy(max_attempts=50, base_delay_s=0.5, max_delay_s=0.5,
                         deadline_s=1.0)
    node = ResilientNode(stub, policy=policy, seed=0, sleep=None)
    with pytest.raises(DeadlineExceeded):
        node.get_code(ADDR)
    assert stub.calls < 50


# ----------------------------------------------------------------- breaker
def test_breaker_opens_after_consecutive_failures() -> None:
    breaker = CircuitBreaker(BreakerConfig(failure_threshold=3,
                                           cooldown_s=10.0))
    for _ in range(2):
        breaker.record_failure(now=0.0)
    assert breaker.state == CLOSED
    breaker.record_failure(now=1.0)
    assert breaker.state == OPEN
    assert not breaker.admit(now=5.0)           # inside the cooldown
    assert breaker.retry_at() == pytest.approx(11.0)


def test_breaker_half_open_probe_closes_on_success() -> None:
    breaker = CircuitBreaker(BreakerConfig(failure_threshold=1,
                                           cooldown_s=10.0,
                                           half_open_probes=1))
    breaker.record_failure(now=0.0)
    assert breaker.state == OPEN
    assert breaker.admit(now=10.0)              # cooldown over: probe admitted
    assert breaker.state == HALF_OPEN
    assert not breaker.admit(now=10.0)          # only one probe in flight
    breaker.record_success(now=10.5)
    assert breaker.state == CLOSED
    assert breaker.admit(now=10.6)


def test_breaker_half_open_probe_failure_reopens() -> None:
    breaker = CircuitBreaker(BreakerConfig(failure_threshold=1,
                                           cooldown_s=10.0))
    breaker.record_failure(now=0.0)
    assert breaker.admit(now=10.0)
    assert breaker.state == HALF_OPEN
    breaker.record_failure(now=10.5)
    assert breaker.state == OPEN
    assert breaker.retry_at() == pytest.approx(20.5)  # cooldown restarted
    assert not breaker.admit(now=15.0)


def test_success_resets_the_consecutive_failure_count() -> None:
    breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
    breaker.record_failure(now=0.0)
    breaker.record_failure(now=0.0)
    breaker.record_success(now=0.0)
    breaker.record_failure(now=0.0)
    breaker.record_failure(now=0.0)
    assert breaker.state == CLOSED


def test_open_circuit_fails_fast_with_circuit_open() -> None:
    stub = FlakyStub(failures=1_000)
    node = ResilientNode(stub, policy=RetryPolicy(max_attempts=2),
                         breaker=BreakerConfig(failure_threshold=2,
                                               cooldown_s=1e9),
                         seed=0, sleep=None)
    with pytest.raises(DeadlineExceeded):
        node.get_code(ADDR)                      # two failures: circuit opens
    calls_before = stub.calls
    with pytest.raises(CircuitOpen):
        node.get_code(ADDR)                      # rejected without an RPC
    assert stub.calls == calls_before
    assert node.metrics.counter_value("resilience.circuit_open_rejections",
                                      method="eth_getCode") == 1
    assert node.metrics.counter_value("resilience.breaker_transitions",
                                      method="eth_getCode", to=OPEN) == 1
    assert node.metrics.gauge("resilience.breaker_state",
                              method="eth_getCode").value == 2


def test_breaker_recovers_through_half_open_on_virtual_time() -> None:
    # The virtual clock (accumulated skipped backoff) pushes the node past
    # the cooldown, so open -> half-open -> closed happens without real
    # waiting: the stub heals after its first two failures.
    stub = FlakyStub(failures=2)
    node = ResilientNode(stub,
                         policy=RetryPolicy(max_attempts=2, base_delay_s=0.2,
                                            max_delay_s=0.2),
                         breaker=BreakerConfig(failure_threshold=2,
                                               cooldown_s=0.0),
                         seed=0, sleep=None)
    with pytest.raises(DeadlineExceeded):
        node.get_code(ADDR)                      # opens the circuit
    assert node.get_code(ADDR) == b"\x01"        # half-open probe succeeds
    assert node.metrics.counter_value("resilience.breaker_transitions",
                                      method="eth_getCode", to=CLOSED) == 1
    assert node.metrics.gauge("resilience.breaker_state",
                              method="eth_getCode").value == 0


def test_breakers_are_per_method() -> None:
    node = ResilientNode(FlakyStub(), seed=0, sleep=None)
    assert node.breaker_for("eth_getCode") is node.breaker_for("eth_getCode")
    assert node.breaker_for("eth_getCode") is not \
        node.breaker_for("eth_getStorageAt")
