"""WorldState archive history: storage/code reads at arbitrary heights."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.chain.state import WorldState

ADDR = b"\x0a" * 20


def test_storage_history_at_heights() -> None:
    state = WorldState()
    state.current_block = 10
    state.set_storage(ADDR, 0, 100)
    state.current_block = 20
    state.set_storage(ADDR, 0, 200)
    state.current_block = 30
    state.set_storage(ADDR, 0, 0)

    assert state.get_storage_at(ADDR, 0, 5) == 0
    assert state.get_storage_at(ADDR, 0, 10) == 100
    assert state.get_storage_at(ADDR, 0, 15) == 100
    assert state.get_storage_at(ADDR, 0, 20) == 200
    assert state.get_storage_at(ADDR, 0, 29) == 200
    assert state.get_storage_at(ADDR, 0, 30) == 0
    assert state.get_storage_at(ADDR, 0, 1000) == 0


def test_same_block_overwrite_keeps_last() -> None:
    state = WorldState()
    state.current_block = 7
    state.set_storage(ADDR, 1, 1)
    state.set_storage(ADDR, 1, 2)
    assert state.get_storage_at(ADDR, 1, 7) == 2
    assert state.storage_change_blocks(ADDR, 1) == [7]


def test_code_history() -> None:
    state = WorldState()
    state.current_block = 3
    state.set_code(ADDR, b"\x01")
    state.current_block = 9
    state.set_code(ADDR, b"\x02")
    assert state.get_code_at(ADDR, 2) == b""
    assert state.get_code_at(ADDR, 3) == b"\x01"
    assert state.get_code_at(ADDR, 8) == b"\x01"
    assert state.get_code_at(ADDR, 9) == b"\x02"


def test_destroyed_code_history() -> None:
    state = WorldState()
    state.current_block = 1
    state.set_code(ADDR, b"\x01")
    state.current_block = 5
    state.mark_destroyed(ADDR)
    assert state.get_code_at(ADDR, 4) == b"\x01"
    assert state.get_code_at(ADDR, 5) == b""
    assert state.is_destroyed(ADDR)


def test_revert_truncates_history() -> None:
    state = WorldState()
    state.current_block = 1
    state.set_storage(ADDR, 0, 1)
    snapshot = state.snapshot()
    state.current_block = 2
    state.set_storage(ADDR, 0, 2)
    state.set_storage(ADDR, 3, 9)
    state.revert(snapshot)
    assert state.get_storage(ADDR, 0) == 1
    assert state.get_storage_at(ADDR, 0, 2) == 1
    assert state.storage_change_blocks(ADDR, 0) == [1]
    assert state.storage_change_blocks(ADDR, 3) == []


@given(st.lists(st.tuples(st.integers(1, 200), st.integers(0, 1 << 64)),
                min_size=1, max_size=30))
def test_history_matches_naive_replay(writes: list[tuple[int, int]]) -> None:
    """Archive reads agree with a naive block-by-block replay."""
    writes = sorted(writes, key=lambda pair: pair[0])
    state = WorldState()
    naive: dict[int, int] = {}
    value_now = 0
    for block, value in writes:
        state.current_block = block
        state.set_storage(ADDR, 0, value)
    # Build the naive timeline.
    timeline: dict[int, int] = {}
    for block, value in writes:
        timeline[block] = value
    for height in range(0, 205):
        if height in timeline:
            value_now = timeline[height]
        naive[height] = value_now
    for height in range(0, 205):
        assert state.get_storage_at(ADDR, 0, height) == naive[height]
