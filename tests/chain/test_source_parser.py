"""The Etherscan source parser: render → parse roundtrips and raw text."""

from __future__ import annotations

import pytest

from repro.chain.explorer import SourceRegistry
from repro.chain.source_parser import parse_source_text, verify_from_text
from repro.lang import contract_source_of, render_source, stdlib

from tests.conftest import ALICE

ALL_PATTERNS = [
    stdlib.simple_wallet("Wallet", ALICE),
    stdlib.simple_token("Token", ALICE),
    stdlib.storage_proxy("StorageProxy", b"\x01" * 20, ALICE),
    stdlib.transparent_proxy("Transparent", b"\x01" * 20, ALICE),
    stdlib.honeypot_proxy("Honeypot", b"\x01" * 20, ALICE),
    stdlib.honeypot_logic("Generous"),
    stdlib.audius_proxy("AudiusProxy", b"\x01" * 20, ALICE),
    stdlib.audius_logic("AudiusLogic"),
    stdlib.ownable_delegate_proxy("ODP", b"\x01" * 20, ALICE),
    stdlib.wyvern_logic("Wyvern"),
    stdlib.library_user("LibUser", b"\x02" * 20),
    stdlib.diamond_proxy("Diamond", ALICE),
]


@pytest.mark.parametrize("contract", ALL_PATTERNS,
                         ids=lambda contract: contract.name)
def test_roundtrip_render_then_parse(contract) -> None:
    """Parsing the rendered source recovers the structured record exactly."""
    expected = contract_source_of(contract)
    parsed = parse_source_text(render_source(contract))
    assert parsed.contract_name == expected.contract_name
    assert parsed.function_prototypes == expected.function_prototypes
    assert [(v.name, v.type_name) for v in parsed.storage_variables] == [
        (v.name, v.type_name) for v in expected.storage_variables]


def test_parse_handwritten_solidity() -> None:
    text = """
    // SPDX-License-Identifier: MIT
    pragma solidity ^0.8.0;

    /* A proxy with an
       explicit implementation slot. */
    contract MyProxy {
        address public owner;
        uint private counter = 0;
        uint256 constant FEE = 100;
        mapping(address => uint256) internal shares;

        function upgradeTo(address newImpl) external { }
        function setShare(address who, uint amount) public { }
        function ping() public pure returns (uint256) { return 1; }

        fallback() external payable {
            // forwards via delegatecall
        }
    }
    """
    parsed = parse_source_text(text)
    assert parsed.contract_name == "MyProxy"
    assert parsed.function_prototypes == (
        "upgradeTo(address)", "setShare(address,uint256)", "ping()")
    names_types = [(v.name, v.type_name, v.is_constant)
                   for v in parsed.storage_variables]
    assert ("owner", "address", False) in names_types
    assert ("counter", "uint256", False) in names_types  # uint → uint256
    assert ("FEE", "uint256", True) in names_types
    assert ("shares", "mapping(address=>uint256)", False) in names_types


def test_comments_do_not_leak_declarations() -> None:
    text = """
    contract Clean {
        // address private ghost;
        /* uint256 private phantom; */
        address private real;
        function f() public {}
    }
    """
    parsed = parse_source_text(text)
    assert [v.name for v in parsed.storage_variables] == ["real"]


def test_garbage_text_degrades_gracefully() -> None:
    parsed = parse_source_text("this is not solidity at all {{{")
    assert parsed.contract_name == "Unknown"
    assert parsed.function_prototypes == ()
    assert parsed.storage_variables == ()


def test_verify_from_text_registers(chain=None) -> None:
    registry = SourceRegistry()
    contract = stdlib.simple_wallet("W", ALICE)
    address = b"\x42" * 20
    source = verify_from_text(registry, address, render_source(contract))
    assert registry.get_source(address) is source
    assert "withdraw(uint256)" in source.function_prototypes


def test_parsed_selectors_match_compiled_dispatcher() -> None:
    """Text → parse → selectors equals bytecode → dispatcher extraction."""
    from repro.core.signature_extractor import dispatcher_selectors
    from repro.lang import compile_contract
    from repro.utils.abi import function_selector

    contract = stdlib.simple_token("Tok", ALICE)
    parsed = parse_source_text(render_source(contract))
    from_source = {function_selector(p) for p in parsed.function_prototypes}
    from_bytecode = dispatcher_selectors(
        compile_contract(contract).runtime_code)
    assert from_source == from_bytecode
