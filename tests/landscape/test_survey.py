"""§7 survey analytics over a shared landscape sweep."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Proxion
from repro.core.report import LandscapeReport
from repro.corpus.generator import Landscape
from repro.landscape.survey import (
    HIDDEN,
    PAIR_NO_SOURCE,
    QUADRANTS,
    YEARS,
    figure2_accumulated_contracts,
    figure4_pair_availability,
    figure5_duplicates,
    figure6_upgrades,
    quadrant_of,
    table3_collisions_by_year,
    table4_standards,
)


@pytest.fixture(scope="module")
def sweep(landscape: Landscape) -> LandscapeReport:
    proxion = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset)
    return proxion.analyze_all()


def test_figure2_is_cumulative_and_complete(sweep: LandscapeReport) -> None:
    series = figure2_accumulated_contracts(sweep)
    previous_totals = 0
    for year in YEARS:
        totals = sum(series[year].values())
        assert totals >= previous_totals
        previous_totals = totals
    assert sum(series[2023].values()) == len(sweep)
    assert set(series[2023]) == set(QUADRANTS)


def test_figure2_hidden_quadrant_dominates(sweep: LandscapeReport) -> None:
    final = figure2_accumulated_contracts(sweep)[2023]
    assert final[HIDDEN] > 0
    # Source availability is the minority, as on mainnet (Fig. 2).
    with_source = final["source-only"] + final["source+tx"]
    assert with_source < sum(final.values()) / 2


def test_quadrant_of_matches_flags(sweep: LandscapeReport) -> None:
    for analysis in sweep.analyses.values():
        quadrant = quadrant_of(analysis)
        if analysis.is_hidden:
            assert quadrant == HIDDEN
        if analysis.has_source and analysis.has_transactions:
            assert quadrant == "source+tx"


def test_figure4_pairs(sweep: LandscapeReport, landscape: Landscape) -> None:
    series = figure4_pair_availability(sweep, landscape.node,
                                       landscape.registry)
    final = series[2023]
    total_pairs = sum(final.values())
    expected_pairs = sum(
        len(a.logic_history.logic_addresses)
        for a in sweep.analyses.values()
        if a.is_proxy and a.logic_history is not None
        and a.deploy_year in YEARS)
    assert total_pairs == expected_pairs
    # Most proxies lack source (paper: ~90%).
    assert final[PAIR_NO_SOURCE] + final["only-logic-source"] > total_pairs / 2


def test_table3_counts_collisions(sweep: LandscapeReport) -> None:
    table = table3_collisions_by_year(sweep)
    assert sum(table.function_by_year.values()) == (
        table.total_function_collisions)
    assert table.total_function_collisions > 0
    # Wyvern clone families make most function collisions duplicates (98.7%
    # on mainnet).
    assert table.duplicate_share > 0.5
    # Collisions concentrate post-2020 (Table 3's shape).
    early = sum(table.function_by_year[year] for year in range(2015, 2020))
    late = sum(table.function_by_year[year] for year in range(2020, 2024))
    assert late > early


def test_figure5_duplicates(sweep: LandscapeReport,
                            landscape: Landscape) -> None:
    census = figure5_duplicates(sweep, landscape.node)
    assert census.total_proxies == len(sweep.proxies())
    assert census.unique_proxies < census.total_proxies  # clones collapse
    counts = census.proxy_duplicate_counts
    assert counts == sorted(counts, reverse=True)
    assert census.top_proxy_share(3) > 0.3  # heavily skewed head


def test_table4_standards(sweep: LandscapeReport) -> None:
    rows = table4_standards(sweep)
    assert set(rows) == {"EIP-1167", "EIP-1822", "EIP-1967", "Others"}
    shares = [share for _, share in rows.values()]
    assert abs(sum(shares) - 1.0) < 1e-9
    # EIP-1167 dominates (89% on mainnet).
    assert rows["EIP-1167"][1] == max(shares)


def test_figure6_upgrades(sweep: LandscapeReport) -> None:
    census = figure6_upgrades(sweep)
    assert census.total_proxies == len(sweep.proxies())
    assert census.never_upgraded_share > 0.9  # 99.7% on mainnet
    assert sum(census.histogram.values()) == census.total_proxies


def test_figure6_mean_logic_contracts_when_upgraded() -> None:
    from repro.corpus.generator import generate_landscape
    from repro.core.pipeline import Proxion
    boosted = generate_landscape(total=120, seed=3, upgrade_probability=1.0)
    report = Proxion(boosted.node, registry=boosted.registry,
                     dataset=boosted.dataset).analyze_all()
    census = figure6_upgrades(report)
    assert census.upgraded_proxies > 0
    assert census.total_upgrade_events >= census.upgraded_proxies
    assert 1.0 < census.mean_logic_contracts < 4.0  # paper: 1.32
