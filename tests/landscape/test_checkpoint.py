"""SweepCheckpoint: JSONL format, fingerprint guard, restore fidelity."""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import Proxion
from repro.core.report import ContractFailure
from repro.corpus.generator import generate_landscape
from repro.errors import ConfigurationError
from repro.landscape.checkpoint import SCHEMA, SweepCheckpoint, fingerprint
from repro.landscape.serialize import analysis_to_dict, dict_to_analysis


@pytest.fixture(scope="module")
def world():
    return generate_landscape(total=40, seed=5)


def _analyses(world, count: int = 3):
    proxion = Proxion(world.node, registry=world.registry, dataset=world.dataset)
    produced = []
    for address in world.dataset.addresses():
        if not world.node.is_alive(address):
            continue
        produced.append(proxion.analyze_contract(address))
        if len(produced) == count:
            break
    return produced


def test_header_schema_and_fingerprint(tmp_path, world) -> None:
    addresses = world.dataset.addresses()
    path = tmp_path / "sweep.ckpt"
    SweepCheckpoint.start(str(path), addresses).close()
    header = json.loads(path.read_text().splitlines()[0])
    assert header == {"schema": SCHEMA,
                      "fingerprint": fingerprint(addresses),
                      "total": len(addresses)}


def test_records_restore_faithfully(tmp_path, world) -> None:
    addresses = world.dataset.addresses()
    analyses = _analyses(world)
    failure = ContractFailure(address=addresses[-1], cause="transient-outage",
                              error="injected", stage="analysis")
    path = str(tmp_path / "sweep.ckpt")
    with SweepCheckpoint.start(path, addresses) as checkpoint:
        for analysis in analyses:
            checkpoint.record_analysis(analysis)
        checkpoint.record_failure(failure)
        checkpoint.record_skip(addresses[-2])

    resumed = SweepCheckpoint.resume(path, addresses)
    assert resumed.completed == ({a.address for a in analyses}
                                 | {failure.address, addresses[-2]})
    assert resumed.skipped == {addresses[-2]}
    assert resumed.restored_failures() == [failure]
    # Restored analyses serialize identically to the originals — the
    # round-trip guarantee checkpoint/resume equivalence rests on.
    assert [analysis_to_dict(a) for a in resumed.restored_analyses()] == \
        [analysis_to_dict(a) for a in analyses]
    resumed.close()


def test_dict_round_trip_guarantee(world) -> None:
    for analysis in _analyses(world, count=8):
        record = analysis_to_dict(analysis)
        assert analysis_to_dict(dict_to_analysis(record)) == record


def test_resume_requires_an_existing_file(tmp_path, world) -> None:
    with pytest.raises(ConfigurationError):
        SweepCheckpoint.resume(str(tmp_path / "missing.ckpt"),
                               world.dataset.addresses())


def test_fingerprint_mismatch_refuses_to_resume(tmp_path, world) -> None:
    addresses = world.dataset.addresses()
    path = str(tmp_path / "sweep.ckpt")
    SweepCheckpoint.start(path, addresses).close()
    with pytest.raises(ConfigurationError, match="different address list"):
        SweepCheckpoint.resume(path, list(reversed(addresses)))


def test_wrong_schema_refuses_to_resume(tmp_path, world) -> None:
    addresses = world.dataset.addresses()
    path = tmp_path / "sweep.ckpt"
    path.write_text(json.dumps({"schema": "repro.checkpoint/999",
                                "fingerprint": fingerprint(addresses),
                                "total": len(addresses)}) + "\n")
    with pytest.raises(ConfigurationError, match="schema"):
        SweepCheckpoint.resume(str(path), addresses)


def test_unknown_record_kinds_are_tolerated(tmp_path, world) -> None:
    addresses = world.dataset.addresses()
    path = tmp_path / "sweep.ckpt"
    with SweepCheckpoint.start(str(path), addresses) as checkpoint:
        checkpoint.record_skip(addresses[0])
    with open(path, "a", encoding="utf-8") as stream:
        stream.write('{"kind":"note","text":"added in a later minor"}\n')
    resumed = SweepCheckpoint.resume(str(path), addresses)
    assert resumed.completed == {addresses[0]}
    resumed.close()


class TestKillMinus9Tolerance:
    """Crash-truncation artifacts a SIGKILL'd worker can leave behind."""

    def _seeded(self, tmp_path, world, count: int = 3):
        addresses = world.dataset.addresses()
        path = tmp_path / "sweep.ckpt"
        with SweepCheckpoint.start(str(path), addresses) as checkpoint:
            for analysis in _analyses(world, count=count):
                checkpoint.record_analysis(analysis)
        return path, addresses

    def test_truncated_final_line_is_dropped_and_counted(
            self, tmp_path, world) -> None:
        path, addresses = self._seeded(tmp_path, world)
        whole = path.read_text()
        lines = whole.splitlines(keepends=True)
        # Kill mid-write: the last record loses its back half.
        path.write_text("".join(lines[:-1]) + lines[-1][:len(lines[-1]) // 2])
        resumed = SweepCheckpoint.resume(str(path), addresses)
        assert resumed.recovered_truncations == 1
        # The first two records survive; the torn one is simply re-analyzed.
        assert len(resumed.restored_analyses()) == 2
        assert len(resumed.completed) == 2
        resumed.close()

    def test_garbage_final_line_is_dropped_and_counted(
            self, tmp_path, world) -> None:
        path, addresses = self._seeded(tmp_path, world)
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"kind":"analysis","data":{"addr\x00\x00')
        resumed = SweepCheckpoint.resume(str(path), addresses)
        assert resumed.recovered_truncations == 1
        assert len(resumed.restored_analyses()) == 3
        resumed.close()

    def test_corruption_before_the_tail_still_refuses(
            self, tmp_path, world) -> None:
        path, addresses = self._seeded(tmp_path, world)
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1][:10] + "\n"  # torn record *not* at the tail
        path.write_text("".join(lines))
        with pytest.raises(ConfigurationError, match="not the final line"):
            SweepCheckpoint.resume(str(path), addresses)

    def test_empty_file_refuses_to_resume(self, tmp_path, world) -> None:
        addresses = world.dataset.addresses()
        path = tmp_path / "sweep.ckpt"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            SweepCheckpoint.resume(str(path), addresses)

    def test_headerless_garbage_refuses_to_resume(self, tmp_path,
                                                  world) -> None:
        addresses = world.dataset.addresses()
        path = tmp_path / "sweep.ckpt"
        path.write_text('{"schema": "repro.check\x00')
        with pytest.raises(ConfigurationError, match="unreadable header"):
            SweepCheckpoint.resume(str(path), addresses)

    def test_clean_resume_counts_no_recoveries(self, tmp_path,
                                               world) -> None:
        path, addresses = self._seeded(tmp_path, world)
        resumed = SweepCheckpoint.resume(str(path), addresses)
        assert resumed.recovered_truncations == 0
        resumed.close()

    def test_truncated_tail_resume_recomputes_only_the_torn_contract(
            self, tmp_path, world) -> None:
        """End to end through analyze_all: the torn record's contract is
        re-analyzed, everything restores, and the recovery is surfaced as
        the ``checkpoint.recovered_truncations`` metric."""
        addresses = [address for address in world.dataset.addresses()
                     if world.node.is_alive(address)][:6]
        path = tmp_path / "sweep.ckpt"
        proxion = Proxion(world.node, registry=world.registry,
                          dataset=world.dataset)
        with SweepCheckpoint.start(str(path), addresses) as checkpoint:
            first = proxion.analyze_all(addresses, checkpoint=checkpoint)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + lines[-1][:20])

        resumer = Proxion(world.node, registry=world.registry,
                          dataset=world.dataset)
        with SweepCheckpoint.resume(str(path), addresses) as restored:
            second = resumer.analyze_all(addresses, checkpoint=restored)
        assert [analysis_to_dict(a) for a in second.analyses.values()] == \
            [analysis_to_dict(a) for a in first.analyses.values()]
        assert resumer.metrics.counter_value(
            "checkpoint.recovered_truncations") == 1
        assert resumer.metrics.counter_value(
            "pipeline.resumed_contracts") == len(addresses) - 1

    def test_header_is_fsynced_before_any_record(self, tmp_path,
                                                 world) -> None:
        """A fresh checkpoint is durably resumable the instant start()
        returns — a worker may crash before its first record."""
        addresses = world.dataset.addresses()
        path = tmp_path / "sweep.ckpt"
        live = SweepCheckpoint.start(str(path), addresses)
        try:
            # Read through the filesystem, not the open handle: the
            # header must already be on disk (flushed + fsynced).
            header = json.loads(path.read_text().splitlines()[0])
            assert header["schema"] == SCHEMA
        finally:
            live.close()


def test_resume_does_not_reprobe_skipped_dead_contracts(tmp_path) -> None:
    """Skips land in ``completed``, so a resumed sweep never re-issues the
    dead contract's liveness RPC — and the resume counters stay precise
    (skips are not "resumed contracts")."""
    world = generate_landscape(total=30, seed=3)
    dead = b"\xde\xad" + b"\x00" * 18          # never deployed: no code
    addresses = world.addresses() + [dead]
    path = str(tmp_path / "sweep.ckpt")

    proxion = Proxion(world.node, registry=world.registry,
                      dataset=world.dataset)
    with SweepCheckpoint.start(path, addresses) as checkpoint:
        first = proxion.analyze_all(addresses, checkpoint=checkpoint)
    assert dead in checkpoint.skipped
    assert dead in checkpoint.completed

    code_before = world.node.api_calls.get("eth_getCode")
    probes: list[bytes] = []
    real_is_alive = world.node.is_alive
    world.node.is_alive = (                     # spy: count liveness probes
        lambda address: probes.append(address) or real_is_alive(address))
    try:
        resumer = Proxion(world.node, registry=world.registry,
                          dataset=world.dataset)
        with SweepCheckpoint.resume(path, addresses) as restored:
            second = resumer.analyze_all(addresses, checkpoint=restored)
    finally:
        world.node.is_alive = real_is_alive
    # Fully restored: not a single liveness probe, the dead one included,
    # and no analysis RPCs either.
    assert probes == []
    assert world.node.api_calls.get("eth_getCode") == code_before
    assert second.analyses.keys() == first.analyses.keys()
    assert resumer.metrics.counter_value(
        "pipeline.resumed_contracts") == len(first.analyses)
    assert resumer.metrics.counter_value("pipeline.resumed_skips") == 1
