"""SQLite result store."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Proxion
from repro.landscape.store import ResultStore


@pytest.fixture(scope="module")
def stored(landscape):
    proxion = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset)
    report = proxion.analyze_all()
    store = ResultStore(":memory:")
    store.save_report(report)
    return store, report, landscape


def test_counts_match(stored) -> None:
    store, report, _ = stored
    assert store.contract_count() == len(report)
    assert len(store.proxies()) == len(report.proxies())


def test_standards_census_matches(stored) -> None:
    store, report, _ = stored
    census = store.standards_census()
    expected = {standard.value: count
                for standard, count in report.standards_census().items()}
    assert census == expected


def test_query_by_standard_and_year(stored) -> None:
    store, report, _ = stored
    minimal = store.proxies(standard="EIP-1167")
    assert minimal
    assert all(record.standard == "EIP-1167" for record in minimal)
    recent = store.proxies(year=2023)
    assert all(record.deploy_year == 2023 for record in recent)


def test_hidden_filter(stored) -> None:
    store, report, _ = stored
    hidden = store.proxies(hidden_only=True)
    assert len(hidden) == len(report.hidden_proxies())
    assert all(record.is_hidden for record in hidden)


def test_logic_chain_roundtrip(stored) -> None:
    store, report, _ = stored
    for analysis in report.proxies():
        if analysis.logic_history is None:
            continue
        chain = store.logic_chain("0x" + analysis.address.hex())
        assert chain == ["0x" + logic.hex()
                         for logic in analysis.logic_history.logic_addresses]
        break
    else:
        pytest.skip("no proxies with logic history")


def test_collision_queries(stored) -> None:
    store, report, _ = stored
    function_rows = store.collisions(kind="function")
    assert len(function_rows) >= report.function_collision_pairs()
    for _, _, detail in function_rows:
        assert detail.startswith("0x") and len(detail) == 10
    verified = store.collisions(kind="storage", verified_only=True)
    expected_verified = sum(
        1 for analysis in report.analyses.values()
        if analysis.has_verified_storage_exploit)
    assert (len({proxy for proxy, _, _ in verified})
            == expected_verified)


def test_save_is_idempotent(stored) -> None:
    store, report, _ = stored
    before = store.contract_count()
    store.save_report(report)
    assert store.contract_count() == before
    assert len(store.collisions()) == len(store.collisions())


def test_yearly_counts(stored) -> None:
    store, report, _ = stored
    yearly = store.yearly_counts()
    assert sum(yearly.values()) == len(report)
    assert min(yearly) >= 2015 and max(yearly) <= 2023


def test_file_backed_store(tmp_path, stored) -> None:
    _, report, _ = stored
    path = tmp_path / "sweep.db"
    with ResultStore(str(path)) as store:
        store.save_report(report)
    with ResultStore(str(path)) as reopened:
        assert reopened.contract_count() == len(report)
