"""The store's offline query surface (proxies/collisions/censuses).

Formerly exercised through the deprecated ``ResultStore`` shim; the shim
is gone (PR 9) and the queries live on :class:`AnalysisStore` directly —
same ``repro.store/1`` file format, so databases written by the old
``--db`` spelling keep opening unchanged.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Proxion
from repro.store.store import AnalysisStore

# AnalysisStore.proxies() row layout (denormalized query columns).
ADDRESS, CODE_HASH, HAS_SOURCE, HAS_TX, YEAR, IS_PROXY, STANDARD = range(7)


@pytest.fixture(scope="module")
def stored(landscape):
    proxion = Proxion(landscape.node, registry=landscape.registry,
                      dataset=landscape.dataset)
    report = proxion.analyze_all()
    store = AnalysisStore(":memory:")
    store.save_report(report)
    return store, report, landscape


def test_counts_match(stored) -> None:
    store, report, _ = stored
    assert store.contract_count() == len(report)
    assert len(store.proxies()) == len(report.proxies())


def test_standards_census_matches(stored) -> None:
    store, report, _ = stored
    census = store.standards_census()
    expected = {standard.value: count
                for standard, count in report.standards_census().items()}
    assert census == expected


def test_query_by_standard_and_year(stored) -> None:
    store, report, _ = stored
    minimal = store.proxies(standard="EIP-1167")
    assert minimal
    assert all(row[STANDARD] == "EIP-1167" for row in minimal)
    recent = store.proxies(year=2023)
    assert all(row[YEAR] == 2023 for row in recent)


def test_hidden_filter(stored) -> None:
    store, report, _ = stored
    hidden = store.proxies(hidden_only=True)
    assert len(hidden) == len(report.hidden_proxies())
    assert all(not row[HAS_SOURCE] and not row[HAS_TX] for row in hidden)


def test_logic_chain_roundtrip(stored) -> None:
    store, report, _ = stored
    for analysis in report.proxies():
        if analysis.logic_history is None:
            continue
        chain = store.logic_chain("0x" + analysis.address.hex())
        assert chain == ["0x" + logic.hex()
                         for logic in analysis.logic_history.logic_addresses]
        break
    else:
        pytest.skip("no proxies with logic history")


def test_collision_queries(stored) -> None:
    store, report, _ = stored
    function_rows = store.collisions(kind="function")
    assert len(function_rows) >= report.function_collision_pairs()
    for _, _, detail in function_rows:
        assert detail.startswith("0x") and len(detail) == 10
    verified = store.collisions(kind="storage", verified_only=True)
    expected_verified = sum(
        1 for analysis in report.analyses.values()
        if analysis.has_verified_storage_exploit)
    assert (len({proxy for proxy, _, _ in verified})
            == expected_verified)


def test_save_is_idempotent(stored) -> None:
    store, report, _ = stored
    before = store.contract_count()
    store.save_report(report)
    assert store.contract_count() == before
    assert len(store.collisions()) == len(store.collisions())


def test_yearly_counts(stored) -> None:
    store, report, _ = stored
    yearly = store.yearly_counts()
    assert sum(yearly.values()) == len(report)
    assert min(yearly) >= 2015 and max(yearly) <= 2023


def test_file_backed_store(tmp_path, stored) -> None:
    _, report, _ = stored
    path = tmp_path / "sweep.db"
    with AnalysisStore(str(path)) as store:
        store.save_report(report)
    with AnalysisStore(str(path)) as reopened:
        assert reopened.contract_count() == len(report)


def test_point_reads(stored) -> None:
    """The repro.api point-read surface: one row per lookup, None on miss."""
    store, report, _ = stored
    address = next(iter(report.analyses))
    record = store.load_analysis_record(address)
    assert record is not None
    assert record["address"] == "0x" + address.hex()
    missing = bytes(20)
    assert store.load_analysis_record(missing) is None
    assert store.load_failure_record(missing) is None
    assert not store.has_skip(missing)
