"""JSON serialization of sweeps."""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import Proxion
from repro.landscape.serialize import (
    analysis_to_dict,
    report_to_dict,
    report_to_json,
)


@pytest.fixture(scope="module")
def sweep(landscape):
    proxion = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset)
    return proxion.analyze_all()


def test_report_roundtrips_through_json(sweep) -> None:
    parsed = json.loads(report_to_json(sweep))
    assert parsed["summary"]["contracts"] == len(sweep)
    assert parsed["summary"]["proxies"] == len(sweep.proxies())
    assert len(parsed["contracts"]) == len(sweep)


def test_summary_counters_match(sweep) -> None:
    data = report_to_dict(sweep)["summary"]
    assert data["hidden_proxies"] == len(sweep.hidden_proxies())
    assert data["function_collision_pairs"] == sweep.function_collision_pairs()
    assert data["storage_collision_pairs"] == sweep.storage_collision_pairs()
    assert sum(data["standards"].values()) == len(sweep.proxies())


def test_addresses_are_hex_strings(sweep) -> None:
    data = report_to_dict(sweep)
    for record in data["contracts"]:
        assert record["address"].startswith("0x")
        assert len(record["address"]) == 42
        if record["is_proxy"] and record.get("logic_history"):
            for logic in record["logic_history"]["addresses"]:
                assert logic.startswith("0x")


def test_proxy_record_fields(sweep) -> None:
    proxies = [analysis_to_dict(a) for a in sweep.proxies()]
    assert proxies
    for record in proxies:
        assert record["standard"] in ("EIP-1167", "EIP-1822", "EIP-1967",
                                      "Others")
        assert record["check"]["logic_location"] in ("hardcoded", "storage",
                                                     "unknown")


def test_collision_records_present(sweep) -> None:
    flagged = [analysis_to_dict(a) for a in sweep.analyses.values()
               if a.has_storage_collision]
    assert flagged
    for record in flagged:
        assert record["storage_collisions"]
        collision = record["storage_collisions"][0]["collisions"][0]
        assert collision["kind"] in ("layout-mismatch", "type-mismatch")
        assert collision["proxy_range"][0] < collision["proxy_range"][1]


def test_evidence_digest_rides_in_analysis_records(sweep) -> None:
    from repro.landscape.serialize import dict_to_analysis
    from repro.obs.provenance import SCHEMA

    plain = analysis_to_dict(next(iter(sweep.analyses.values())))
    assert "evidence" not in plain    # un-audited sweeps stay digest-free

    analysis = next(iter(sweep.analyses.values()))
    digest = {"schema": SCHEMA, "sections": ["proxy_detection"],
              "kinds": {"proxy_detection": 1}}
    analysis.evidence_digest = digest
    try:
        record = analysis_to_dict(analysis)
        assert record["evidence"] == digest
        restored = dict_to_analysis(json.loads(json.dumps(record)))
        assert restored.evidence_digest == digest
    finally:
        analysis.evidence_digest = None


def test_cli_json_mode(capsys) -> None:
    from repro.cli import main
    assert main(["survey", "--total", "40", "--seed", "2", "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert "summary" in parsed and "contracts" in parsed


def test_cli_chain_selection(capsys) -> None:
    from repro.cli import main
    assert main(["survey", "--total", "30", "--seed", "2",
                 "--chain", "polygon"]) == 0
    assert "polygon" in capsys.readouterr().out
