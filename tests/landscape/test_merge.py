"""Deterministic merging of per-shard landscape reports."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Proxion
from repro.core.report import ContractAnalysis, ContractFailure, LandscapeReport
from repro.corpus.generator import generate_landscape
from repro.errors import ConfigurationError
from repro.landscape import merge_reports, report_to_json
from repro.parallel import shard_addresses


def _analysis(tag: bytes) -> ContractAnalysis:
    address = tag.ljust(20, b"\x00")
    return ContractAnalysis(address=address, code_hash=tag.ljust(32, b"\x11"))


def _failure(tag: bytes) -> ContractFailure:
    return ContractFailure(address=tag.ljust(20, b"\x00"),
                           cause="rpc_timeout", error="boom",
                           stage="analysis")


def _report(analyses=(), failures=(), **counters) -> LandscapeReport:
    report = LandscapeReport()
    for analysis in analyses:
        report.add(analysis)
    for failure in failures:
        report.add_failure(failure)
    for name, value in counters.items():
        setattr(report, name, value)
    return report


def test_overlapping_analyzed_address_is_rejected() -> None:
    shared = _analysis(b"\x01")
    with pytest.raises(ConfigurationError, match="overlapping shards"):
        merge_reports([_report([shared]), _report([shared])])


def test_overlap_between_analysis_and_failure_is_rejected() -> None:
    # One shard analyzed it, another quarantined it: still a partition bug.
    with pytest.raises(ConfigurationError, match="overlapping shards"):
        merge_reports([_report([_analysis(b"\x01")]),
                       _report(failures=[_failure(b"\x01")])])


def test_failure_records_are_preserved() -> None:
    failure = _failure(b"\x02")
    merged = merge_reports([_report([_analysis(b"\x01")]),
                            _report(failures=[failure])])
    assert merged.failures[failure.address] is failure
    assert len(merged.analyses) == 1


def test_dedup_counters_are_summed() -> None:
    merged = merge_reports([
        _report([_analysis(b"\x01")], proxy_check_cache_hits=3,
                function_cache_misses=2, collision_cache_hits=1),
        _report([_analysis(b"\x02")], proxy_check_cache_hits=4,
                storage_cache_hits=5, collision_cache_hits=2),
    ])
    assert merged.proxy_check_cache_hits == 7
    assert merged.function_cache_misses == 2
    assert merged.storage_cache_hits == 5
    assert merged.collision_cache_hits == 3


def test_order_reorders_and_skips_unanalyzed_addresses() -> None:
    first, second = _analysis(b"\x01"), _analysis(b"\x02")
    dead = b"\xde\xad".ljust(20, b"\x00")
    merged = merge_reports([_report([second]), _report([first])],
                           order=[first.address, dead, second.address])
    assert list(merged.analyses) == [first.address, second.address]


def test_order_missing_an_analyzed_address_is_an_error() -> None:
    known, orphan = _analysis(b"\x01"), _analysis(b"\x02")
    with pytest.raises(ConfigurationError, match="missing 1 analyzed"):
        merge_reports([_report([known, orphan])], order=[known.address])


def test_merged_serialization_matches_serial_sweep() -> None:
    """§7 equivalence: codehash-sharded partial sweeps merge byte-identically.

    Runs the real pipeline over an 80-contract landscape twice — once
    serially, once as four independent codehash shards merged back — and
    compares the full serialized reports, dedup counters included.
    """
    world = generate_landscape(total=80, seed=11)
    addresses = world.addresses()

    serial = Proxion.from_chain(world.chain, registry=world.registry,
                                dataset=world.dataset).analyze_all(addresses)

    partitions = shard_addresses(addresses, 4, "codehash",
                                 code_of=world.chain.state.get_code)
    partials = []
    for partition in partitions:
        proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                     dataset=world.dataset)
        partials.append(proxion.analyze_all(partition))
    merged = merge_reports(partials, order=addresses)

    assert report_to_json(merged) == report_to_json(serial)
