"""Table 2 scoring machinery and the paper-shape assertions."""

from __future__ import annotations

import pytest

from repro.corpus.ground_truth import AccuracyCorpus
from repro.landscape.accuracy import (
    ConfusionMatrix,
    crush_storage_verdicts,
    proxion_function_verdicts,
    proxion_storage_verdicts,
    table2,
    uschunt_storage_verdicts,
)


def test_confusion_matrix_arithmetic() -> None:
    matrix = ConfusionMatrix()
    matrix.record(True, True)
    matrix.record(True, False)
    matrix.record(False, False)
    matrix.record(False, True)
    assert (matrix.tp, matrix.fp, matrix.tn, matrix.fn) == (1, 1, 1, 1)
    assert matrix.accuracy == 0.5
    assert "accuracy=50.0%" in matrix.row()


def test_empty_matrix_accuracy_zero() -> None:
    assert ConfusionMatrix().accuracy == 0.0


def test_table2_rejects_unknown_methodology(
        accuracy_corpus: AccuracyCorpus) -> None:
    with pytest.raises(ValueError):
        table2(accuracy_corpus, methodology="median")


@pytest.fixture(scope="module")
def scored(accuracy_corpus: AccuracyCorpus):
    return table2(accuracy_corpus, methodology="all")


def test_proxion_no_storage_false_positives(scored) -> None:
    assert scored["storage"]["Proxion"].fp == 0


def test_proxion_beats_baselines_on_storage(scored) -> None:
    proxion = scored["storage"]["Proxion"].accuracy
    assert proxion > scored["storage"]["USCHunt"].accuracy
    assert proxion > scored["storage"]["CRUSH"].accuracy


def test_proxion_beats_uschunt_on_function(scored) -> None:
    assert (scored["function"]["Proxion"].accuracy
            > scored["function"]["USCHunt"].accuracy)


def test_uschunt_has_padding_false_positives(
        accuracy_corpus: AccuracyCorpus) -> None:
    verdicts = uschunt_storage_verdicts(accuracy_corpus)
    padding = [p for p in accuracy_corpus.pairs
               if p.case == "storage-padding-trap"]
    assert any(verdicts[(p.proxy, p.logic)] for p in padding)


def test_crush_has_library_false_positives(
        accuracy_corpus: AccuracyCorpus) -> None:
    verdicts = crush_storage_verdicts(accuracy_corpus)
    traps = [p for p in accuracy_corpus.pairs if p.case == "library-trap"]
    assert traps
    assert all(verdicts[(p.proxy, p.logic)] for p in traps)


def test_proxion_excludes_library_traps(
        accuracy_corpus: AccuracyCorpus) -> None:
    verdicts = proxion_storage_verdicts(accuracy_corpus)
    traps = [p for p in accuracy_corpus.pairs if p.case == "library-trap"]
    assert all(not verdicts[(p.proxy, p.logic)] for p in traps)


def test_everyone_misses_symbolic_slot_positives(
        accuracy_corpus: AccuracyCorpus) -> None:
    """The honest FN class: no bytecode tool resolves calldata-driven slots."""
    hard = [p for p in accuracy_corpus.pairs
            if p.case == "storage-positive-hard"]
    assert hard
    for verdicts in (proxion_storage_verdicts(accuracy_corpus),
                     crush_storage_verdicts(accuracy_corpus),
                     uschunt_storage_verdicts(accuracy_corpus)):
        assert all(not verdicts[(p.proxy, p.logic)] for p in hard)


def test_emulation_error_pairs_are_proxion_misses(
        accuracy_corpus: AccuracyCorpus) -> None:
    emuerr = [p for p in accuracy_corpus.pairs
              if p.case == "emulation-error-pair"]
    assert emuerr
    storage = proxion_storage_verdicts(accuracy_corpus)
    function = proxion_function_verdicts(accuracy_corpus)
    for pair in emuerr:
        assert not storage[(pair.proxy, pair.logic)]
        assert not function[(pair.proxy, pair.logic)]


def test_union_methodology_shrinks_universe(
        accuracy_corpus: AccuracyCorpus) -> None:
    full = table2(accuracy_corpus, methodology="all")
    union = table2(accuracy_corpus, methodology="union")
    assert (union["storage"]["Proxion"].total
            <= full["storage"]["Proxion"].total)
    # Within the union, tools share one universe per collision type.
    totals = {matrix.total for matrix in union["storage"].values()}
    assert len(totals) == 1
