"""Baseline tools: each reproduces its documented strengths and blind spots."""

from __future__ import annotations

from repro.baselines.crush import Crush
from repro.baselines.etherscan_like import EtherscanVerifier
from repro.baselines.salehi import SalehiReplay
from repro.baselines.slither_like import SlitherKeyword
from repro.baselines.uschunt import USCHunt
from repro.chain.blockchain import Blockchain
from repro.chain.explorer import ContractSource, SourceRegistry
from repro.chain.node import ArchiveNode
from repro.lang import compile_contract, contract_source_of, stdlib
from repro.utils import encode_call

from tests.conftest import ALICE, BOB


def _deploy(chain: Blockchain, contract_or_init) -> bytes:
    init = (contract_or_init if isinstance(contract_or_init, bytes)
            else compile_contract(contract_or_init).init_code)
    receipt = chain.deploy(ALICE, init)
    assert receipt.success
    return receipt.created_address


def _register(chain: Blockchain, registry: SourceRegistry, address: bytes,
              contract_ast, compiler_version: str | None = None) -> None:
    source = contract_source_of(contract_ast)
    if compiler_version:
        source = ContractSource(
            contract_name=source.contract_name,
            function_prototypes=source.function_prototypes,
            storage_variables=source.storage_variables,
            text=source.text,
            compiler_version=compiler_version)
    registry.verify(address, source, chain.state.get_code(address))


# ------------------------------------------------------------- EtherScan
def test_etherscan_flags_any_delegatecall(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    tool = EtherscanVerifier(node)
    library = _deploy(chain, stdlib.math_library())
    user = _deploy(chain, stdlib.library_user("U", library))
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.minimal_proxy_init(wallet))
    assert tool.is_proxy(proxy)          # true positive
    assert tool.is_proxy(user)           # FALSE positive: library caller
    assert not tool.is_proxy(wallet)
    assert tool.find_proxies([proxy, user, wallet]) == {proxy, user}


# --------------------------------------------------------------- Slither
def test_slither_needs_source(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    registry = SourceRegistry()
    tool = SlitherKeyword(node, registry)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy_ast = stdlib.storage_proxy("P", wallet, ALICE)
    proxy = _deploy(chain, proxy_ast)
    assert tool.is_proxy(proxy) is None  # hidden: no verdict at all
    _register(chain, registry, proxy, proxy_ast)
    assert tool.is_proxy(proxy) is True


def test_slither_keyword_false_positive(chain: Blockchain) -> None:
    """A non-proxy whose *name* mentions 'proxy' trips the keyword search."""
    node = ArchiveNode(chain)
    registry = SourceRegistry()
    tool = SlitherKeyword(node, registry)
    decoy_ast = stdlib.simple_wallet("ProxyWalletHolder", ALICE)
    decoy = _deploy(chain, decoy_ast)
    _register(chain, registry, decoy, decoy_ast)
    assert tool.is_proxy(decoy) is True  # keyword FP


def test_slither_function_collisions_source_only(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    registry = SourceRegistry()
    tool = SlitherKeyword(node, registry)
    logic_ast = stdlib.honeypot_logic()
    logic = _deploy(chain, logic_ast)
    proxy_ast = stdlib.honeypot_proxy("HP", logic, ALICE)
    proxy = _deploy(chain, proxy_ast)
    assert tool.function_collisions(proxy, logic) is None  # no source yet
    _register(chain, registry, proxy, proxy_ast)
    _register(chain, registry, logic, logic_ast)
    collisions = tool.function_collisions(proxy, logic)
    assert collisions == {bytes.fromhex("df4a3106")}


# ---------------------------------------------------------------- USCHunt
def test_uschunt_halts_on_unsupported_compiler(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    registry = SourceRegistry()
    tool = USCHunt(node, registry)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy_ast = stdlib.storage_proxy("P", wallet, ALICE)
    proxy = _deploy(chain, proxy_ast)
    _register(chain, registry, proxy, proxy_ast, compiler_version="v0.4.11")
    result = tool.check(proxy)
    assert result.halted
    assert not result.is_proxy
    assert tool.halt_count == 1


def test_uschunt_detects_recognizable_proxy(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    registry = SourceRegistry()
    tool = USCHunt(node, registry)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy_ast = stdlib.storage_proxy("P", wallet, ALICE)
    proxy = _deploy(chain, proxy_ast)
    _register(chain, registry, proxy, proxy_ast)
    assert tool.check(proxy).is_proxy


def test_uschunt_misses_nonstandard_variable_names(chain: Blockchain) -> None:
    from repro.corpus.ground_truth import _colliding_proxy
    node = ArchiveNode(chain)
    registry = SourceRegistry()
    tool = USCHunt(node, registry)
    proxy_ast = _colliding_proxy("Odd", b"\x01" * 20, ALICE)
    proxy = _deploy(chain, proxy_ast)
    _register(chain, registry, proxy, proxy_ast)
    assert not tool.check(proxy).is_proxy  # Slither-style FN


def test_uschunt_storage_padding_false_positive(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    registry = SourceRegistry()
    tool = USCHunt(node, registry)
    from repro.corpus.ground_truth import _renamed_logic
    logic_ast = _renamed_logic("R", ("gap", "implAddr"))
    logic = _deploy(chain, logic_ast)
    proxy_ast = stdlib.storage_proxy("P", logic, ALICE)
    proxy = _deploy(chain, proxy_ast)
    _register(chain, registry, proxy, proxy_ast)
    _register(chain, registry, logic, logic_ast)
    findings = tool.storage_collisions(proxy, logic)
    assert findings  # renamed-but-compatible variables flagged anyway
    assert all(finding.is_name_only_mismatch for finding in findings)


def test_uschunt_function_collisions_gated_on_detection(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    registry = SourceRegistry()
    tool = USCHunt(node, registry)
    logic_ast = stdlib.honeypot_logic()
    logic = _deploy(chain, logic_ast)
    proxy_ast = stdlib.honeypot_proxy("HP", logic, ALICE)
    proxy = _deploy(chain, proxy_ast)
    _register(chain, registry, logic, logic_ast)
    _register(chain, registry, proxy, proxy_ast, compiler_version="v0.4.11")
    assert tool.function_collisions(proxy, logic) == set()  # halted → nothing


# ------------------------------------------------------------------ CRUSH
def test_crush_mines_pairs_from_history(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    tool = Crush(node)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    hidden = _deploy(chain, stdlib.storage_proxy("H", wallet, ALICE))
    chain.transact(BOB, proxy, b"\xaa\xbb\xcc\xdd")  # exercises the fallback
    result = tool.mine_pairs([proxy, hidden, wallet])
    assert proxy in result.proxies
    assert (proxy, wallet) in result.pairs
    assert hidden not in result.proxies  # no transactions → invisible


def test_crush_counts_library_users_as_proxies(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    tool = Crush(node)
    library = _deploy(chain, stdlib.math_library())
    user = _deploy(chain, stdlib.library_user("U", library))
    chain.transact(BOB, user, encode_call("addViaLibrary(uint256)", [1]))
    result = tool.mine_pairs([user])
    assert user in result.proxies  # the documented FP class
    assert (user, library) in result.pairs


def test_crush_analyze_detects_storage_collisions(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    tool = Crush(node)
    logic = _deploy(chain, stdlib.audius_logic())
    proxy = _deploy(chain, stdlib.audius_proxy("AP", logic, ALICE))
    chain.transact(BOB, proxy, b"\xaa\xbb\xcc\xdd")
    result = tool.analyze([proxy], verify_exploits=True)
    assert result.collision_pairs == 1
    assert result.verified_exploits == 1


# ----------------------------------------------------------------- Salehi
def test_salehi_detects_proxy_with_history(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    tool = SalehiReplay(node)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    chain.transact(BOB, proxy, b"\xaa\xbb\xcc\xdd")
    assert tool.is_proxy(proxy)


def test_salehi_misses_hidden_proxy(chain: Blockchain) -> None:
    node = ArchiveNode(chain)
    tool = SalehiReplay(node)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    hidden = _deploy(chain, stdlib.storage_proxy("H", wallet, ALICE))
    assert not tool.is_proxy(hidden)  # no transactions to replay


def test_salehi_misses_proxy_with_only_function_txs(chain: Blockchain) -> None:
    """Replay only covers what history exercised: transactions that hit a
    real function never reach the fallback, so the proxy stays invisible."""
    node = ArchiveNode(chain)
    tool = SalehiReplay(node)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    chain.transact(ALICE, proxy,
                   encode_call("setImplementation(address)", [wallet]))
    assert not tool.is_proxy(proxy)


def test_salehi_excludes_library_calls(chain: Blockchain) -> None:
    """Replay checks the *forwarded calldata* criterion, so unlike CRUSH it
    does not misclassify library users."""
    node = ArchiveNode(chain)
    tool = SalehiReplay(node)
    library = _deploy(chain, stdlib.math_library())
    user = _deploy(chain, stdlib.library_user("U", library))
    chain.transact(BOB, user, encode_call("addViaLibrary(uint256)", [1]))
    assert not tool.is_proxy(user)
