"""The batch pipeline: dedup caches, per-contract analysis, full sweeps."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.chain.dataset import ContractDataset
from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.core.pipeline import Proxion, ProxionOptions
from repro.core.standards import ProxyStandard
from repro.lang import compile_contract, contract_source_of, stdlib
from repro.utils import encode_call

from tests.conftest import ALICE, BOB


def _world(chain: Blockchain):
    dataset = ContractDataset()
    registry = SourceRegistry()
    node = ArchiveNode(chain)

    def deploy(contract_or_init, source_ast=None):
        init = (contract_or_init if isinstance(contract_or_init, bytes)
                else compile_contract(contract_or_init).init_code)
        receipt = chain.deploy(ALICE, init)
        assert receipt.success, receipt.error
        dataset.add(receipt.created_address, receipt.block_number, ALICE)
        if source_ast is not None:
            compiled = compile_contract(source_ast)
            registry.verify(receipt.created_address,
                            contract_source_of(source_ast),
                            compiled.runtime_code)
        return receipt.created_address

    return node, registry, dataset, deploy


def test_analyze_contract_full_record(chain: Blockchain) -> None:
    node, registry, dataset, deploy = _world(chain)
    logic = deploy(stdlib.audius_logic())
    proxy = deploy(stdlib.audius_proxy("AP", logic, ALICE))
    proxion = Proxion(node, registry=registry, dataset=dataset)
    analysis = proxion.analyze_contract(proxy)
    assert analysis.is_proxy
    assert analysis.standard is ProxyStandard.OTHER
    assert analysis.logic_history.logic_addresses == [logic]
    assert analysis.has_storage_collision
    assert analysis.has_verified_storage_exploit
    assert analysis.is_hidden  # no source, no transactions
    assert analysis.deploy_year is not None


def test_dedup_cache_reuses_verdicts(chain: Blockchain) -> None:
    node, registry, dataset, deploy = _world(chain)
    wallet = deploy(stdlib.simple_wallet("W", ALICE))
    clones = [chain.deploy(ALICE, stdlib.minimal_proxy_init(wallet)
                           ).created_address for _ in range(5)]
    for clone in clones:
        dataset.add(clone, chain.latest_block_number, ALICE)
    proxion = Proxion(node, registry=registry, dataset=dataset)
    report = proxion.analyze_all()
    assert all(report.analyses[clone].is_proxy for clone in clones)
    # 5 identical clones → 4 cache hits.
    assert report.proxy_check_cache_hits >= 4


def test_cached_check_refreshes_instance_logic(chain: Blockchain) -> None:
    """Two same-code storage proxies pointing at different logics must not
    leak each other's logic address through the cache."""
    node, registry, dataset, deploy = _world(chain)
    logic_a = deploy(stdlib.simple_wallet("A", ALICE))
    logic_b = deploy(stdlib.simple_wallet("B", ALICE))
    proxy_a = deploy(stdlib.storage_proxy("P", logic_a, ALICE))
    proxy_b = deploy(stdlib.storage_proxy("P", logic_b, ALICE))
    assert (chain.state.get_code(proxy_a) == chain.state.get_code(proxy_b))
    proxion = Proxion(node, registry=registry, dataset=dataset)
    check_a = proxion.check_proxy(proxy_a)
    check_b = proxion.check_proxy(proxy_b)
    assert check_a.logic_address == logic_a
    assert check_b.logic_address == logic_b


def test_dedup_disabled_runs_full_emulation(chain: Blockchain) -> None:
    node, registry, dataset, deploy = _world(chain)
    wallet = deploy(stdlib.simple_wallet("W", ALICE))
    clone_a = deploy(stdlib.minimal_proxy_init(wallet))
    clone_b = deploy(stdlib.minimal_proxy_init(wallet))
    options = ProxionOptions(dedup_by_code_hash=False)
    proxion = Proxion(node, registry=registry, dataset=dataset, options=options)
    assert proxion.check_proxy(clone_a).is_proxy
    assert proxion.check_proxy(clone_b).is_proxy
    assert not proxion._check_cache


def test_collision_reports_cached_per_code_pair(chain: Blockchain) -> None:
    node, registry, dataset, deploy = _world(chain)
    logic = deploy(stdlib.honeypot_logic())
    first = deploy(stdlib.honeypot_proxy("HP", logic, ALICE))
    second = deploy(stdlib.honeypot_proxy("HP", logic, ALICE))
    proxion = Proxion(node, registry=registry, dataset=dataset)
    analysis_one = proxion.analyze_contract(first)
    cache_size = len(proxion._function_cache)
    analysis_two = proxion.analyze_contract(second)
    assert analysis_one.has_function_collision
    assert analysis_two.has_function_collision
    assert len(proxion._function_cache) == cache_size  # reused, not re-run


def test_analyze_all_skips_destroyed(chain: Blockchain) -> None:
    node, registry, dataset, deploy = _world(chain)
    wallet = deploy(stdlib.simple_wallet("W", ALICE))
    dataset.add(b"\x99" * 20, 1, ALICE)  # never deployed
    proxion = Proxion(node, registry=registry, dataset=dataset)
    report = proxion.analyze_all()
    assert wallet in report.analyses
    assert b"\x99" * 20 not in report.analyses


def test_diamond_extension_via_pipeline(chain: Blockchain) -> None:
    node, registry, dataset, deploy = _world(chain)
    wallet = deploy(stdlib.simple_wallet("W", ALICE))
    diamond = deploy(stdlib.diamond_proxy("D", ALICE))
    selector = encode_call("ownerOf()")[:4]
    chain.transact(ALICE, diamond, encode_call(
        "registerFacet(uint32,address)",
        [int.from_bytes(selector, "big"), wallet]))
    chain.transact(BOB, diamond, encode_call("ownerOf()"))

    default = Proxion(node, registry=registry, dataset=dataset)
    assert not default.check_proxy(diamond).is_proxy

    extended = Proxion(node, registry=registry, dataset=dataset,
                       options=ProxionOptions(detect_diamonds=True))
    assert extended.check_proxy(diamond).is_proxy


def test_upgraded_proxy_collides_with_old_logic_only(chain: Blockchain) -> None:
    """Collision checks run against every *historical* logic contract."""
    node, registry, dataset, deploy = _world(chain)
    colliding = deploy(stdlib.audius_logic())
    clean = deploy(stdlib.simple_wallet("W", ALICE))
    proxy = deploy(stdlib.audius_proxy("AP", colliding, ALICE))
    # The audius proxy has no upgrade function; use a storage proxy variant.
    proxy = deploy(stdlib.storage_proxy("SP", colliding, ALICE))
    chain.transact(ALICE, proxy,
                   encode_call("setImplementation(address)", [clean]))
    proxion = Proxion(node, registry=registry, dataset=dataset)
    analysis = proxion.analyze_contract(proxy)
    assert len(analysis.logic_history.logic_addresses) == 2
    assert analysis.has_storage_collision  # vs the historical colliding logic


def test_landscape_report_counters(chain: Blockchain) -> None:
    node, registry, dataset, deploy = _world(chain)
    wallet = deploy(stdlib.simple_wallet("W", ALICE))
    deploy(stdlib.minimal_proxy_init(wallet))
    weird = deploy(stdlib.raw_deploy_init(stdlib.WEIRD_DELEGATECALL_RUNTIME))
    proxion = Proxion(node, registry=registry, dataset=dataset)
    report = proxion.analyze_all()
    assert len(report.proxies()) == 1
    assert 0 < report.emulation_failure_rate() < 1
    census = report.standards_census()
    assert census[ProxyStandard.EIP1167] == 1
