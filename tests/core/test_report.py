"""ContractAnalysis / LandscapeReport record semantics."""

from __future__ import annotations

from repro.core.function_collision import FunctionCollision, FunctionCollisionReport
from repro.core.proxy_detector import NotProxyReason, ProxyCheck
from repro.core.report import ContractAnalysis, LandscapeReport
from repro.core.standards import ProxyStandard
from repro.core.storage_collision import (
    RangeUse,
    StorageCollision,
    StorageCollisionReport,
)
from repro.core.symexec import SlotKey

ADDR = b"\x01" * 20
HASH = b"\x02" * 32


def _analysis(**kwargs) -> ContractAnalysis:
    defaults = dict(address=ADDR, code_hash=HASH)
    defaults.update(kwargs)
    return ContractAnalysis(**defaults)


def test_hidden_requires_neither_source_nor_tx() -> None:
    assert _analysis().is_hidden
    assert not _analysis(has_source=True).is_hidden
    assert not _analysis(has_transactions=True).is_hidden


def test_is_proxy_requires_check() -> None:
    assert not _analysis().is_proxy
    positive = ProxyCheck(ADDR, True)
    assert _analysis(check=positive).is_proxy


def test_emulation_failed_flag() -> None:
    failed = ProxyCheck(ADDR, False, NotProxyReason.EMULATION_ERROR)
    clean = ProxyCheck(ADDR, False, NotProxyReason.NO_FORWARD)
    assert _analysis(check=failed).emulation_failed
    assert not _analysis(check=clean).emulation_failed


def test_collision_flags() -> None:
    colliding = FunctionCollisionReport(
        proxy=ADDR, logic=ADDR,
        collisions=[FunctionCollision(b"\x00" * 4)])
    empty = FunctionCollisionReport(proxy=ADDR, logic=ADDR)
    analysis = _analysis(function_reports=[empty, colliding])
    assert analysis.has_function_collision

    verified = StorageCollisionReport(
        proxy=ADDR, logic=ADDR,
        collisions=[StorageCollision(
            slot=SlotKey.concrete(0),
            proxy_use=RangeUse(0, 20),
            logic_use=RangeUse(0, 32),
            kind="layout-mismatch",
            verified=True)])
    analysis = _analysis(storage_reports=[verified])
    assert analysis.has_storage_collision
    assert analysis.has_verified_storage_exploit


def test_landscape_report_counters() -> None:
    report = LandscapeReport()
    proxy_check = ProxyCheck(ADDR, True)
    report.add(_analysis(check=proxy_check, standard=ProxyStandard.EIP1167))
    report.add(_analysis(address=b"\x02" * 20))
    report.add(_analysis(
        address=b"\x03" * 20,
        check=ProxyCheck(b"\x03" * 20, False,
                         NotProxyReason.EMULATION_ERROR)))
    assert len(report) == 3
    assert len(report.proxies()) == 1
    assert len(report.hidden_proxies()) == 1
    assert abs(report.emulation_failure_rate() - 1 / 3) < 1e-9
    assert report.standards_census() == {ProxyStandard.EIP1167: 1}


def test_empty_report() -> None:
    report = LandscapeReport()
    assert len(report) == 0
    assert report.emulation_failure_rate() == 0.0
    assert report.proxies() == []
    assert report.standards_census() == {}
    assert report.function_collision_pairs() == 0


def test_range_use_geometry() -> None:
    full = RangeUse(0, 32)
    owner = RangeUse(0, 20)
    flag = RangeUse(0, 1)
    tail = RangeUse(20, 12)
    assert full.overlaps(owner) and owner.overlaps(full)
    assert owner.overlaps(flag)
    assert not owner.overlaps(tail)
    assert owner.same_range(RangeUse(0, 20, type_name="address"))
    assert not owner.same_range(flag)
