"""PUSH4 harvesting vs dispatcher-pattern extraction (§5.1)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.signature_extractor import (
    address_hardcoded_in,
    candidate_selectors,
    dispatcher_selectors,
    extract_push20_addresses,
)
from repro.evm import opcodes as op
from repro.lang import ast, compile_contract, stdlib

from tests.conftest import ALICE


def test_dispatcher_selectors_match_declared_functions() -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    extracted = dispatcher_selectors(compiled.runtime_code)
    assert extracted == set(compiled.selector_table)


def test_dispatcher_selectors_on_token() -> None:
    compiled = compile_contract(stdlib.simple_token("T", ALICE))
    assert dispatcher_selectors(compiled.runtime_code) == set(
        compiled.selector_table)


def test_no_functions_no_dispatcher_selectors() -> None:
    compiled = compile_contract(stdlib.audius_proxy("P", b"\x01" * 20, ALICE))
    assert dispatcher_selectors(compiled.runtime_code) == set()


def test_candidate_superset_of_dispatcher() -> None:
    compiled = compile_contract(stdlib.honeypot_proxy("HP", b"\x01" * 20, ALICE))
    assert dispatcher_selectors(compiled.runtime_code) <= candidate_selectors(
        compiled.runtime_code)


def test_data_push4_not_a_dispatcher_selector() -> None:
    """A PUSH4 immediately followed by STOP is data, not a dispatcher (§3.1)."""
    code = bytes([op.PUSH4, 0xDE, 0xAD, 0xBE, 0xEF, op.STOP])
    assert candidate_selectors(code) == {b"\xde\xad\xbe\xef"}
    assert dispatcher_selectors(code) == set()


def test_push4_feeding_sstore_is_not_selector() -> None:
    # PUSH4 x PUSH1 0 SSTORE — a constant written to storage.
    code = bytes([op.PUSH4, 1, 2, 3, 4, op.PUSH1, 0, op.SSTORE, op.STOP])
    assert dispatcher_selectors(code) == set()


def test_vyper_style_iszero_dispatcher_detected() -> None:
    # PUSH4 sig; XOR; ISZERO; PUSH2 dest; JUMPI — alternate compare shape.
    code = bytes([op.PUSH4, 9, 9, 9, 9, op.XOR, op.ISZERO,
                  op.PUSH0 + 2, 0x00, 0x0B, op.JUMPI, op.JUMPDEST, op.STOP])
    assert dispatcher_selectors(code) == {bytes([9, 9, 9, 9])}


def test_extract_push20_addresses() -> None:
    compiled = compile_contract(stdlib.honeypot_proxy("HP", b"\x42" * 20, ALICE))
    # The constructor (init code) embeds the logic address; the runtime
    # reads it from storage, so the runtime has no PUSH20 of it.
    assert b"\x42" * 20 in extract_push20_addresses(compiled.init_code)


def test_minimal_proxy_address_is_hardcoded() -> None:
    runtime = stdlib.minimal_proxy_runtime(b"\x42" * 20)
    assert address_hardcoded_in(runtime, b"\x42" * 20)
    assert not address_hardcoded_in(runtime, b"\x43" * 20)


@given(st.lists(st.sampled_from(["alpha()", "beta(uint256)", "gamma(address)",
                                 "delta(uint256,uint256)", "omega()"]),
                min_size=1, max_size=5, unique=True))
def test_dispatcher_extraction_is_exact_for_compiled_contracts(
        prototypes: list[str]) -> None:
    """For solc-idiomatic output, extraction is exact — no FPs, no FNs.

    This is the property that makes bytecode function-collision detection
    possible at 99.5% accuracy (Table 2)."""
    from repro.utils.abi import function_selector, parse_prototype

    functions = []
    for prototype in prototypes:
        name, arg_types = parse_prototype(prototype)
        params = tuple((f"p{i}", t) for i, t in enumerate(arg_types))
        functions.append(ast.Function(
            name=name, params=params, body=(ast.Return(ast.Const(1)),)))
    compiled = compile_contract(ast.Contract(
        name="Probe", functions=tuple(functions)))
    expected = {function_selector(p) for p in prototypes}
    assert dispatcher_selectors(compiled.runtime_code) == expected
