"""The continuous deployment monitor."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.dataset import ContractDataset
from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.core.monitor import DeploymentMonitor
from repro.core.pipeline import Proxion
from repro.lang import compile_contract, stdlib

from tests.conftest import ALICE, BOB, ETHER


@pytest.fixture()
def monitored(chain: Blockchain):
    proxion = Proxion(ArchiveNode(chain), registry=SourceRegistry(), dataset=ContractDataset())
    return chain, DeploymentMonitor(proxion)


def _deploy(chain: Blockchain, contract_or_init) -> bytes:
    init = (contract_or_init if isinstance(contract_or_init, bytes)
            else compile_contract(contract_or_init).init_code)
    receipt = chain.deploy(ALICE, init)
    assert receipt.success
    return receipt.created_address


def test_no_deployments_no_alerts(monitored) -> None:
    chain, monitor = monitored
    chain.transact(ALICE, BOB, b"")
    assert monitor.poll() == []
    assert monitor.stats.contracts_seen == 0


def test_plain_contract_no_alert(monitored) -> None:
    chain, monitor = monitored
    _deploy(chain, stdlib.simple_wallet("W", ALICE))
    assert monitor.poll() == []
    assert monitor.stats.contracts_seen == 1
    assert monitor.stats.proxies_seen == 0


def test_hidden_proxy_alert(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    alerts = monitor.poll()
    kinds = {alert.kind for alert in alerts}
    assert "hidden-proxy" in kinds
    assert any(alert.address == proxy for alert in alerts)


def test_honeypot_alert(monitored) -> None:
    chain, monitor = monitored
    logic = _deploy(chain, stdlib.honeypot_logic())
    pot = _deploy(chain, stdlib.honeypot_proxy("HP", logic, ALICE))
    chain.fund(pot, 10 * ETHER)
    alerts = monitor.poll()
    honeypots = [alert for alert in alerts if alert.kind == "honeypot"]
    assert honeypots
    assert honeypots[0].address == pot
    assert "0xdf4a3106" in honeypots[0].detail


def test_verified_exploit_alert(monitored) -> None:
    chain, monitor = monitored
    logic = _deploy(chain, stdlib.audius_logic())
    proxy = _deploy(chain, stdlib.audius_proxy("AP", logic, ALICE))
    alerts = monitor.poll()
    exploits = [alert for alert in alerts if alert.kind == "verified-exploit"]
    assert exploits
    assert exploits[0].address == proxy
    assert "0x8129fc1c" in exploits[0].detail  # initialize()


def test_cursor_advances_no_duplicate_alerts(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    first = monitor.poll()
    assert first
    assert monitor.poll() == []   # nothing new
    _deploy(chain, stdlib.storage_proxy("P2", wallet, ALICE))
    second = monitor.poll()
    assert second
    assert {alert.address for alert in second}.isdisjoint(
        {alert.address for alert in first})


def test_factory_created_contracts_are_seen(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    monitor.poll()
    # A factory that CREATEs an EIP-1167 clone of the wallet when poked.
    from repro.evm import opcodes as op
    from tests.evm.helpers import asm, push
    clone_init = stdlib.minimal_proxy_init(wallet)
    body = asm(
        push(len(clone_init)), push(0, 2), push(0), op.CODECOPY,
        push(len(clone_init)), push(0), push(0), op.CREATE, op.POP, op.STOP)
    factory_runtime = asm(
        push(len(clone_init)), push(len(body), 2), push(0), op.CODECOPY,
        push(len(clone_init)), push(0), push(0), op.CREATE, op.POP,
        op.STOP) + clone_init
    factory = _deploy(chain, stdlib.raw_deploy_init(factory_runtime))
    monitor.poll()
    receipt = chain.transact(BOB, factory, b"")
    assert receipt.success and receipt.internal_creates
    alerts = monitor.poll()
    clone = receipt.internal_creates[0].new_address
    assert any(alert.address == clone and alert.kind == "hidden-proxy"
               for alert in alerts)


def test_alert_rendering(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    alerts = monitor.poll()
    text = str(alerts[0])
    assert "hidden-proxy" in text and "0x" in text and "block" in text
