"""The continuous deployment monitor."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.dataset import ContractDataset
from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.core.monitor import DeploymentMonitor
from repro.core.pipeline import Proxion
from repro.lang import compile_contract, stdlib

from tests.conftest import ALICE, BOB, ETHER


@pytest.fixture()
def monitored(chain: Blockchain):
    proxion = Proxion(ArchiveNode(chain), registry=SourceRegistry(), dataset=ContractDataset())
    return chain, DeploymentMonitor(proxion)


def _deploy(chain: Blockchain, contract_or_init) -> bytes:
    init = (contract_or_init if isinstance(contract_or_init, bytes)
            else compile_contract(contract_or_init).init_code)
    receipt = chain.deploy(ALICE, init)
    assert receipt.success
    return receipt.created_address


def test_no_deployments_no_alerts(monitored) -> None:
    chain, monitor = monitored
    chain.transact(ALICE, BOB, b"")
    assert monitor.poll() == []
    assert monitor.stats.contracts_seen == 0


def test_plain_contract_no_alert(monitored) -> None:
    chain, monitor = monitored
    _deploy(chain, stdlib.simple_wallet("W", ALICE))
    assert monitor.poll() == []
    assert monitor.stats.contracts_seen == 1
    assert monitor.stats.proxies_seen == 0


def test_hidden_proxy_alert(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    alerts = monitor.poll()
    kinds = {alert.kind for alert in alerts}
    assert "hidden-proxy" in kinds
    assert any(alert.address == proxy for alert in alerts)


def test_honeypot_alert(monitored) -> None:
    chain, monitor = monitored
    logic = _deploy(chain, stdlib.honeypot_logic())
    pot = _deploy(chain, stdlib.honeypot_proxy("HP", logic, ALICE))
    chain.fund(pot, 10 * ETHER)
    alerts = monitor.poll()
    honeypots = [alert for alert in alerts if alert.kind == "honeypot"]
    assert honeypots
    assert honeypots[0].address == pot
    assert "0xdf4a3106" in honeypots[0].detail


def test_verified_exploit_alert(monitored) -> None:
    chain, monitor = monitored
    logic = _deploy(chain, stdlib.audius_logic())
    proxy = _deploy(chain, stdlib.audius_proxy("AP", logic, ALICE))
    alerts = monitor.poll()
    exploits = [alert for alert in alerts if alert.kind == "verified-exploit"]
    assert exploits
    assert exploits[0].address == proxy
    assert "0x8129fc1c" in exploits[0].detail  # initialize()


def test_cursor_advances_no_duplicate_alerts(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    first = monitor.poll()
    assert first
    assert monitor.poll() == []   # nothing new
    _deploy(chain, stdlib.storage_proxy("P2", wallet, ALICE))
    second = monitor.poll()
    assert second
    assert {alert.address for alert in second}.isdisjoint(
        {alert.address for alert in first})


def test_factory_created_contracts_are_seen(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    monitor.poll()
    # A factory that CREATEs an EIP-1167 clone of the wallet when poked.
    from repro.evm import opcodes as op
    from tests.evm.helpers import asm, push
    clone_init = stdlib.minimal_proxy_init(wallet)
    body = asm(
        push(len(clone_init)), push(0, 2), push(0), op.CODECOPY,
        push(len(clone_init)), push(0), push(0), op.CREATE, op.POP, op.STOP)
    factory_runtime = asm(
        push(len(clone_init)), push(len(body), 2), push(0), op.CODECOPY,
        push(len(clone_init)), push(0), push(0), op.CREATE, op.POP,
        op.STOP) + clone_init
    factory = _deploy(chain, stdlib.raw_deploy_init(factory_runtime))
    monitor.poll()
    receipt = chain.transact(BOB, factory, b"")
    assert receipt.success and receipt.internal_creates
    alerts = monitor.poll()
    clone = receipt.internal_creates[0].new_address
    assert any(alert.address == clone and alert.kind == "hidden-proxy"
               for alert in alerts)


def test_alert_rendering(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    alerts = monitor.poll()
    text = str(alerts[0])
    assert "hidden-proxy" in text and "0x" in text and "block" in text


# ------------------------------------------------------------------- reorgs
def test_reorg_is_detected_and_rolled_back(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    doomed = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    first = monitor.poll()
    assert any(alert.address == doomed for alert in first)

    chain.fork(1)                       # orphan the proxy's block
    # Deploy the winner from a different account: the fork reverted
    # ALICE's nonce, so her next CREATE would land on the same address.
    receipt = chain.deploy(BOB, compile_contract(
        stdlib.storage_proxy("P2", wallet, BOB)).init_code)
    assert receipt.success
    winner = receipt.created_address
    alerts = monitor.poll()
    reorgs = [alert for alert in alerts if alert.kind == "reorg"]
    assert len(reorgs) == 1
    assert "depth 1" in reorgs[0].detail
    assert monitor.stats.reorgs == 1
    # The winning branch was re-scanned in the same poll.
    assert any(alert.address == winner and alert.kind == "hidden-proxy"
               for alert in alerts)
    # The orphaned deployment is forgotten: were it ever redeployed it
    # would be analyzed anew, not skipped as already-seen.
    assert doomed not in monitor._seen


def test_reorg_without_orphaned_deployments_still_alerts(monitored) -> None:
    chain, monitor = monitored
    _deploy(chain, stdlib.simple_wallet("W", ALICE))
    monitor.poll()
    chain.transact(ALICE, BOB, b"")     # a block with no deployments
    monitor.poll()
    chain.fork(1)
    alerts = monitor.poll()
    reorgs = [alert for alert in alerts if alert.kind == "reorg"]
    assert len(reorgs) == 1
    assert "0 orphaned deployment(s)" in reorgs[0].detail


def test_steady_polls_do_not_count_reorgs(monitored) -> None:
    chain, monitor = monitored
    for index in range(3):
        _deploy(chain, stdlib.simple_wallet(f"W{index}", ALICE))
        monitor.poll()
    assert monitor.stats.reorgs == 0


def test_reorg_invalidates_store_instance_facts(chain: Blockchain) -> None:
    from repro.store.binding import StoreBinding
    from repro.store.store import AnalysisStore

    binding = StoreBinding(AnalysisStore(":memory:"))
    proxion = Proxion(ArchiveNode(chain), registry=SourceRegistry(),
                      dataset=ContractDataset(), store=binding)
    binding.bind_metrics(proxion.metrics)
    monitor = DeploymentMonitor(proxion)

    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    monitor.poll()
    doomed = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    monitor.poll()
    assert binding.store.load_analysis_record(doomed) is not None

    chain.fork(1)
    alerts = monitor.poll()
    assert any(alert.kind == "reorg" for alert in alerts)
    assert binding.store.load_analysis_record(doomed) is None
    assert binding.store.load_analysis_record(wallet) is not None
    assert proxion.metrics.counter_total("store.reorg_invalidations") > 0
    assert proxion.metrics.counter_total("monitor.reorgs") == 1


def test_factory_internal_creations_roll_back_with_the_reorg(
        monitored) -> None:
    # Satellite case: a factory CREATEs a clone in the very window a reorg
    # later orphans — the clone must leave _seen with its parent block.
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    monitor.poll()
    from repro.evm import opcodes as op
    from tests.evm.helpers import asm, push
    clone_init = stdlib.minimal_proxy_init(wallet)
    body = asm(
        push(len(clone_init)), push(0, 2), push(0), op.CODECOPY,
        push(len(clone_init)), push(0), push(0), op.CREATE, op.POP, op.STOP)
    factory_runtime = asm(
        push(len(clone_init)), push(len(body), 2), push(0), op.CODECOPY,
        push(len(clone_init)), push(0), push(0), op.CREATE, op.POP,
        op.STOP) + clone_init
    factory = _deploy(chain, stdlib.raw_deploy_init(factory_runtime))
    monitor.poll()
    receipt = chain.transact(BOB, factory, b"")
    assert receipt.success and receipt.internal_creates
    clone = receipt.internal_creates[0].new_address
    alerts = monitor.poll()
    assert any(alert.address == clone for alert in alerts)

    chain.fork(1)                       # orphan the factory poke
    alerts = monitor.poll()
    assert any(alert.kind == "reorg" for alert in alerts)
    assert clone not in monitor._seen
    assert factory in monitor._seen     # its own block survived


# ----------------------------------------------------------------- catch_up
def test_catch_up_on_an_empty_chain_is_a_noop(monitored) -> None:
    chain, monitor = monitored
    skipped = monitor.catch_up()        # only the genesis record exists
    assert skipped == len(chain.blocks)
    assert monitor.poll() == []
    assert monitor.catch_up() == 0


def test_catch_up_at_the_tip_returns_zero(monitored) -> None:
    chain, monitor = monitored
    _deploy(chain, stdlib.simple_wallet("W", ALICE))
    monitor.poll()
    assert monitor.catch_up() == 0


def test_catch_up_skips_history_but_follows_new_blocks(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    _deploy(chain, stdlib.storage_proxy("Old", wallet, ALICE))
    assert monitor.catch_up() > 0
    assert monitor.poll() == []         # history was skipped, not alerted
    fresh = _deploy(chain, stdlib.storage_proxy("New", wallet, ALICE))
    alerts = monitor.poll()
    assert any(alert.address == fresh for alert in alerts)


def test_catch_up_with_cursor_beyond_tip_after_rollback(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    for index in range(3):
        _deploy(chain, stdlib.storage_proxy(f"P{index}", wallet, ALICE))
    monitor.poll()
    chain.fork(2)                       # external rollback below the cursor
    assert monitor.catch_up() == 0      # never negative
    # Re-anchored on the surviving branch: a new deploy is still caught
    # (from BOB — ALICE's reverted nonce would reuse an orphaned address).
    receipt = chain.deploy(BOB, compile_contract(
        stdlib.storage_proxy("F", wallet, BOB)).init_code)
    assert receipt.success
    fresh = receipt.created_address
    alerts = monitor.poll()
    assert any(alert.address == fresh for alert in alerts)


def test_poll_after_rollback_without_catch_up_recovers(monitored) -> None:
    chain, monitor = monitored
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    monitor.poll()
    chain.fork(1)
    alerts = monitor.poll()             # detects the divergence itself
    assert any(alert.kind == "reorg" for alert in alerts)
    assert monitor.stats.polls == 2
