"""The redesigned Proxion construction surface.

``Proxion(node)`` is keyword-only beyond the node — the legacy positional
form had its one ``DeprecationWarning`` release and is now a crisp
``TypeError`` pointing at ``from_node``/``from_chain``, the
forward-looking builders.
"""

from __future__ import annotations

import warnings

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.dataset import ContractDataset
from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.core.pipeline import Proxion, ProxionOptions
from repro.obs.registry import NULL_REGISTRY

from tests.conftest import ALICE


@pytest.fixture()
def node(chain: Blockchain) -> ArchiveNode:
    return ArchiveNode(chain)


def test_keyword_construction_emits_no_warning(node) -> None:
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        proxion = Proxion(node, registry=SourceRegistry(),
                          dataset=ContractDataset())
    assert proxion.node is node


def test_positional_construction_is_a_typeerror(node) -> None:
    """The one-release shim is gone: positionals fail loudly and point at
    the builders instead of silently guessing parameter order."""
    with pytest.raises(TypeError, match="from_node"):
        Proxion(node, SourceRegistry(), ContractDataset())


def test_positional_typeerror_never_warns(node) -> None:
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with pytest.raises(TypeError, match="only the node positionally"):
            Proxion(node, SourceRegistry())


def test_from_node_builder(node) -> None:
    dataset = ContractDataset()
    proxion = Proxion.from_node(node, dataset=dataset,
                                options=ProxionOptions(fail_fast=True))
    assert proxion.node is node
    assert proxion.dataset is dataset
    assert proxion.options.fail_fast is True


def test_from_chain_builds_the_node(chain: Blockchain) -> None:
    proxion = Proxion.from_chain(chain, metrics=NULL_REGISTRY,
                                 call_instruction_budget=1234)
    assert isinstance(proxion.node, ArchiveNode)
    assert proxion.node.chain is chain
    assert proxion.node.call_instruction_budget == 1234
    assert proxion.metrics is NULL_REGISTRY


def test_builders_produce_working_analyzers(chain: Blockchain) -> None:
    from repro.lang import compile_contract, stdlib

    logic = chain.deploy(ALICE, compile_contract(
        stdlib.audius_logic()).init_code)
    proxy = chain.deploy(ALICE, compile_contract(
        stdlib.audius_proxy("AP", logic.created_address,
                            ALICE)).init_code)
    proxion = Proxion.from_chain(chain)
    assert proxion.check_proxy(proxy.created_address).is_proxy
