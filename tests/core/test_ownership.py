"""Upgrade-authority analysis (Salehi-style) and transparency probing."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.node import ArchiveNode
from repro.core.ownership import OwnerKind, OwnershipAnalyzer
from repro.core.proxy_detector import ProxyDetector
from repro.lang import compile_contract, stdlib
from repro.lang.storage_layout import EIP1967_ADMIN_SLOT

from tests.conftest import ALICE


def _world(chain: Blockchain):
    node = ArchiveNode(chain)
    detector = ProxyDetector(chain.state, chain.block_context())
    analyzer = OwnershipAnalyzer(node)
    return node, detector, analyzer


def _deploy(chain: Blockchain, contract_or_init) -> bytes:
    init = (contract_or_init if isinstance(contract_or_init, bytes)
            else compile_contract(contract_or_init).init_code)
    receipt = chain.deploy(ALICE, init)
    assert receipt.success
    return receipt.created_address


def test_eip1967_proxy_owned_by_eoa(chain: Blockchain) -> None:
    _, detector, analyzer = _world(chain)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.eip1967_proxy("P", wallet, ALICE))
    report = analyzer.analyze(detector.check(proxy))
    assert report.owner == ALICE
    assert report.owner_kind is OwnerKind.EOA
    assert report.owner_slot == EIP1967_ADMIN_SLOT
    assert report.upgradeable
    assert not report.is_transparent  # plain 1967 delegates for everyone


def test_contract_owned_proxy(chain: Blockchain) -> None:
    """A proxy administered by another contract (multisig-style)."""
    _, detector, analyzer = _world(chain)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    multisig = _deploy(chain, stdlib.simple_wallet("Multisig", ALICE))
    proxy = _deploy(chain, stdlib.eip1967_proxy("P", wallet, multisig))
    report = analyzer.analyze(detector.check(proxy))
    assert report.owner == multisig
    assert report.owner_kind is OwnerKind.CONTRACT


def test_minimal_proxy_is_unowned(chain: Blockchain) -> None:
    _, detector, analyzer = _world(chain)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.minimal_proxy_init(wallet))
    report = analyzer.analyze(detector.check(proxy))
    assert report.owner is None
    assert report.owner_kind is OwnerKind.NONE
    assert not report.upgradeable
    assert not report.is_transparent


def test_storage_proxy_owner_at_slot0(chain: Blockchain) -> None:
    _, detector, analyzer = _world(chain)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    report = analyzer.analyze(detector.check(proxy))
    assert report.owner == ALICE
    assert report.owner_slot == 0


def test_transparent_proxy_detected(chain: Blockchain) -> None:
    _, detector, analyzer = _world(chain)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.transparent_proxy("P", wallet, ALICE))
    report = analyzer.analyze(detector.check(proxy))
    assert report.owner == ALICE
    assert report.is_transparent  # admin probes never reach the delegation


def test_rejects_non_proxy(chain: Blockchain) -> None:
    _, detector, analyzer = _world(chain)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    with pytest.raises(ValueError):
        analyzer.analyze(detector.check(wallet))


def test_probe_leaves_state_untouched(chain: Blockchain) -> None:
    _, detector, analyzer = _world(chain)
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    proxy = _deploy(chain, stdlib.transparent_proxy("P", wallet, ALICE))
    admin_slot_before = chain.state.get_storage(proxy, EIP1967_ADMIN_SLOT)
    analyzer.analyze(detector.check(proxy))
    assert chain.state.get_storage(proxy, EIP1967_ADMIN_SLOT) == admin_slot_before
