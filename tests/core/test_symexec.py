"""The symbolic executor: slot recovery, packed ranges, guards, mappings."""

from __future__ import annotations

from repro.core.symexec import CONCRETE, MAPPING, SlotKey, SymbolicExecutor
from repro.lang import ast, compile_contract, stdlib

from tests.conftest import ALICE


def _summary(contract: ast.Contract):
    return SymbolicExecutor().summarize(compile_contract(contract).runtime_code)


def test_full_word_read_and_write() -> None:
    contract = ast.Contract(
        name="Plain",
        variables=(ast.VarDecl("x", "uint256"),),
        functions=(
            ast.Function(name="get", body=(ast.Return(ast.Load("x")),)),
            ast.Function(name="set", params=(("v", "uint256"),),
                         body=(ast.Store("x", ast.Param(0, "uint256")),)),
        ),
    )
    summary = _summary(contract)
    accesses = summary.semantic_accesses()
    slots = {access.slot for access in accesses}
    assert slots == {SlotKey.concrete(0)}
    assert all(access.offset == 0 and access.size == 32 for access in accesses)
    assert {access.kind for access in accesses} == {"read", "write"}


def test_packed_ranges_recovered() -> None:
    """Shift/mask access patterns reveal variable offsets and sizes —
    how CRUSH deduces types from bytecode (§5.2)."""
    contract = ast.Contract(
        name="Packed",
        variables=(ast.VarDecl("flag", "bool"),
                   ast.VarDecl("count", "uint16"),
                   ast.VarDecl("who", "address")),
        functions=(
            ast.Function(name="getFlag", body=(ast.Return(ast.Load("flag")),)),
            ast.Function(name="getCount", body=(ast.Return(ast.Load("count")),)),
            ast.Function(name="getWho", body=(ast.Return(ast.Load("who")),)),
        ),
    )
    summary = _summary(contract)
    ranges = {(access.offset, access.size)
              for access in summary.semantic_accesses()}
    assert (0, 1) in ranges      # flag
    assert (1, 2) in ranges      # count (packed after the bool)
    assert (3, 20) in ranges     # address at offset 3


def test_packed_write_range_via_rmw() -> None:
    contract = ast.Contract(
        name="PackedW",
        variables=(ast.VarDecl("a", "uint8"), ast.VarDecl("b", "uint8")),
        functions=(ast.Function(
            name="setB", params=(("v", "uint8"),),
            body=(ast.Store("b", ast.Param(0, "uint8")),)),),
    )
    summary = _summary(contract)
    writes = [access for access in summary.semantic_accesses()
              if access.kind == "write"]
    assert [(w.offset, w.size) for w in writes] == [(1, 1)]


def test_selector_attribution() -> None:
    contract = stdlib.simple_wallet("W", ALICE)
    compiled = compile_contract(contract)
    summary = SymbolicExecutor().summarize(compiled.runtime_code)
    by_selector = {access.selector for access in summary.semantic_accesses()}
    # ownerOf() and withdraw(uint256) both read slot 0.
    assert contract.function_by_name("ownerOf").selector in by_selector
    assert contract.function_by_name("withdraw").selector in by_selector


def test_caller_guard_sensitivity() -> None:
    compiled = compile_contract(stdlib.storage_proxy("P", b"\x01" * 20, ALICE))
    summary = SymbolicExecutor().summarize(compiled.runtime_code)
    assert SlotKey.concrete(0) in summary.sensitive_slots()  # owner
    assert SlotKey.concrete(1) not in summary.sensitive_slots()  # logic ptr


def test_guarded_write_flagged() -> None:
    compiled = compile_contract(stdlib.storage_proxy("P", b"\x01" * 20, ALICE))
    summary = SymbolicExecutor().summarize(compiled.runtime_code)
    writes = [access for access in summary.semantic_accesses()
              if access.kind == "write" and access.slot == SlotKey.concrete(1)]
    assert writes and all(write.guarded for write in writes)


def test_unguarded_write_not_flagged() -> None:
    summary = _summary(stdlib.audius_logic())
    writes = [access for access in summary.semantic_accesses()
              if access.kind == "write"]
    assert writes and all(not write.guarded for write in writes)


def test_mapping_slot_family() -> None:
    summary = _summary(stdlib.simple_token("T", ALICE))
    mapping_accesses = [access for access in summary.semantic_accesses()
                        if access.slot.kind == MAPPING]
    assert mapping_accesses
    assert {access.slot.base for access in mapping_accesses} == {1}


def test_symbolic_slot_skipped() -> None:
    contract = ast.Contract(
        name="Raw",
        functions=(ast.Function(
            name="writeRaw", params=(("s", "uint256"), ("v", "uint256")),
            body=(ast.StoreAt(ast.Param(0, "uint256"),
                              ast.Param(1, "uint256")),)),),
    )
    summary = _summary(contract)
    concrete_writes = [access for access in summary.semantic_accesses()
                       if access.kind == "write"
                       and access.slot.kind == CONCRETE]
    assert concrete_writes == []


def test_path_exploration_covers_all_functions() -> None:
    contract = stdlib.simple_wallet("W", ALICE)
    summary = _summary(contract)
    selectors = {access.selector for access in summary.semantic_accesses()
                 if access.selector}
    assert len(selectors) >= 2
    assert summary.paths_explored >= 3


def test_budget_truncation_is_reported() -> None:
    executor = SymbolicExecutor(max_paths=1)
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    summary = executor.summarize(compiled.runtime_code)
    assert summary.paths_explored == 1
    assert summary.paths_truncated >= 1


def test_fallback_accesses_have_no_selector() -> None:
    compiled = compile_contract(stdlib.audius_proxy("P", b"\x01" * 20, ALICE))
    summary = SymbolicExecutor().summarize(compiled.runtime_code)
    fallback_reads = [access for access in summary.semantic_accesses()
                      if access.selector is None and access.kind == "read"]
    assert any(access.slot == SlotKey.concrete(1)
               for access in fallback_reads)  # the logic pointer


def test_audius_logic_full_profile() -> None:
    """The Listing-2 signature: flags at (0,1)/(1,1), owner write at (0,20)."""
    summary = _summary(stdlib.audius_logic())
    writes = {(w.offset, w.size) for w in summary.semantic_accesses()
              if w.kind == "write"}
    assert writes == {(0, 1), (1, 1), (0, 20)}
