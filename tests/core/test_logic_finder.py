"""Algorithm 1, exact change points, API-call efficiency (§4.3/§6.1)."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.node import ArchiveNode
from repro.core.logic_finder import (
    LogicFinder,
    algorithm1_values,
    slot_change_points,
)
from repro.core.proxy_detector import ProxyDetector
from repro.lang import compile_contract, stdlib
from repro.utils import encode_call
from repro.utils.hexutil import address_to_word

from tests.conftest import ALICE


def _upgradeable_proxy(chain: Blockchain, upgrades: int
                       ) -> tuple[bytes, list[bytes]]:
    """Deploy a storage proxy and upgrade it ``upgrades`` times."""
    logics = [chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet(f"L{i}", ALICE)).init_code
    ).created_address for i in range(upgrades + 1)]
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", logics[0], ALICE)).init_code
    ).created_address
    for logic in logics[1:]:
        chain.advance_to_block(chain.latest_block_number + 5000)
        receipt = chain.transact(
            ALICE, proxy, encode_call("setImplementation(address)", [logic]))
        assert receipt.success
    chain.advance_to_block(chain.latest_block_number + 50_000)
    return proxy, logics


def test_algorithm1_recovers_all_values(chain: Blockchain) -> None:
    proxy, logics = _upgradeable_proxy(chain, upgrades=3)
    node = ArchiveNode(chain)
    values = algorithm1_values(node, proxy, 1)
    expected = {address_to_word(logic) for logic in logics}
    assert expected <= values  # 0 (pre-deployment) may also appear
    assert values - expected <= {0}


def test_algorithm1_static_slot_costs_two_reads(chain: Blockchain) -> None:
    proxy, _ = _upgradeable_proxy(chain, upgrades=0)
    node = ArchiveNode(chain)
    values = algorithm1_values(
        node, proxy, 1,
        lower=chain.latest_block_number - 10,
        upper=chain.latest_block_number)
    assert len(values) == 1
    assert node.api_calls.get("eth_getStorageAt") == 2


def test_algorithm1_is_logarithmic_not_linear(chain: Blockchain) -> None:
    """The §6.1 efficiency claim: ~26 calls instead of millions of blocks."""
    proxy, _ = _upgradeable_proxy(chain, upgrades=2)
    chain.advance_to_block(chain.latest_block_number + 1_000_000)
    node = ArchiveNode(chain)
    algorithm1_values(node, proxy, 1)
    calls = node.api_calls.get("eth_getStorageAt")
    total_blocks = chain.latest_block_number
    assert total_blocks > 1_000_000
    assert calls < 200  # versus ~total_blocks for the naive scan


def test_algorithm1_misses_reused_values(chain: Blockchain) -> None:
    """The documented no-reuse assumption: A→B→A can hide B entirely when
    the probe heights land symmetrically — Algorithm 1 may return only {A}."""
    logic_a = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("A", ALICE)).init_code
    ).created_address
    logic_b = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("B", ALICE)).init_code
    ).created_address
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", logic_a, ALICE)).init_code
    ).created_address
    deploy_block = chain.latest_block_number
    # Flip to B and back to A inside a narrow window.
    chain.transact(ALICE, proxy, encode_call("setImplementation(address)",
                                             [logic_b]))
    chain.transact(ALICE, proxy, encode_call("setImplementation(address)",
                                             [logic_a]))
    chain.advance_to_block(deploy_block + (1 << 14))
    node = ArchiveNode(chain)
    values = algorithm1_values(node, proxy, 1, lower=deploy_block,
                               upper=chain.latest_block_number)
    # The endpoints agree (both A) — the whole range is assumed constant.
    assert values == {address_to_word(logic_a)}


def test_change_points_exact(chain: Blockchain) -> None:
    proxy, logics = _upgradeable_proxy(chain, upgrades=3)
    node = ArchiveNode(chain)
    changes = slot_change_points(node, proxy, 1)
    assert [value for _, value in changes] == [
        address_to_word(logic) for logic in logics]
    blocks = [block for block, _ in changes]
    assert blocks == sorted(blocks)


def test_change_points_catch_reuse(chain: Blockchain) -> None:
    """The exact variant does not suffer the A→B→A blindness."""
    logic_a = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("A", ALICE)).init_code
    ).created_address
    logic_b = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("B", ALICE)).init_code
    ).created_address
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", logic_a, ALICE)).init_code
    ).created_address
    chain.transact(ALICE, proxy, encode_call("setImplementation(address)",
                                             [logic_b]))
    chain.transact(ALICE, proxy, encode_call("setImplementation(address)",
                                             [logic_a]))
    chain.advance_to_block(chain.latest_block_number + 10_000)
    node = ArchiveNode(chain)
    changes = slot_change_points(node, proxy, 1)
    values = [value for _, value in changes]
    assert values == [address_to_word(logic_a), address_to_word(logic_b),
                      address_to_word(logic_a)]


def test_logic_finder_full_history(chain: Blockchain) -> None:
    proxy, logics = _upgradeable_proxy(chain, upgrades=2)
    node = ArchiveNode(chain)
    detector = ProxyDetector(chain.state, chain.block_context())
    history = LogicFinder(node).find(detector.check(proxy))
    assert history.logic_addresses == logics
    assert history.upgrade_count == 2
    assert history.current_logic == logics[-1]
    assert history.api_calls_used > 0


def test_logic_finder_minimal_proxy_no_api_calls(chain: Blockchain) -> None:
    wallet = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    proxy = chain.deploy(ALICE, stdlib.minimal_proxy_init(wallet)).created_address
    node = ArchiveNode(chain)
    detector = ProxyDetector(chain.state, chain.block_context())
    history = LogicFinder(node).find(detector.check(proxy))
    assert history.logic_addresses == [wallet]
    assert history.slot is None
    assert history.upgrade_count == 0
    assert history.api_calls_used == 0


def test_logic_finder_rejects_non_proxy(chain: Blockchain) -> None:
    wallet = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    node = ArchiveNode(chain)
    detector = ProxyDetector(chain.state, chain.block_context())
    with pytest.raises(ValueError):
        LogicFinder(node).find(detector.check(wallet))
