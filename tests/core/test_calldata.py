"""Probe-calldata crafting (§4.2)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.calldata import craft_probe_calldata, craft_probe_selector
from repro.core.signature_extractor import candidate_selectors
from repro.lang import compile_contract, stdlib

from tests.conftest import ALICE


def test_probe_selector_avoids_all_push4_operands() -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    selector = craft_probe_selector(compiled.runtime_code)
    assert selector not in candidate_selectors(compiled.runtime_code)


def test_probe_selector_deterministic() -> None:
    compiled = compile_contract(stdlib.simple_token("T", ALICE))
    assert (craft_probe_selector(compiled.runtime_code)
            == craft_probe_selector(compiled.runtime_code))


def test_probe_calldata_shape() -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    calldata = craft_probe_calldata(compiled.runtime_code)
    assert len(calldata) == 4 + 64
    assert calldata[4:] == b"\x00" * 64


def test_probe_walks_past_dense_avoid_set() -> None:
    """Even a contrived avoid-set containing the first candidates is escaped."""
    code = b"\x01\x02\x03"
    first = craft_probe_selector(code, avoid=set())
    avoid = {first}
    second = craft_probe_selector(code, avoid=avoid)
    assert second != first
    avoid.add(second)
    third = craft_probe_selector(code, avoid=avoid)
    assert third not in avoid


@given(st.binary(min_size=1, max_size=400))
def test_probe_avoids_push4_in_arbitrary_bytecode(code: bytes) -> None:
    selector = craft_probe_selector(code)
    assert len(selector) == 4
    assert selector not in candidate_selectors(code)
