"""Two-step proxy detection (§4.1–4.2) across every contract class."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.core.proxy_detector import (
    LogicLocation,
    NotProxyReason,
    ProxyDetector,
)
from repro.lang import compile_contract, stdlib
from repro.lang.storage_layout import (
    EIP1822_PROXIABLE_SLOT,
    EIP1967_IMPLEMENTATION_SLOT,
)
from repro.utils import encode_call

from tests.conftest import ALICE


@pytest.fixture()
def detector(chain: Blockchain) -> ProxyDetector:
    return ProxyDetector(chain.state, chain.block_context())


def _deploy(chain: Blockchain, contract_or_init) -> bytes:
    init = (contract_or_init if isinstance(contract_or_init, bytes)
            else compile_contract(contract_or_init).init_code)
    receipt = chain.deploy(ALICE, init)
    assert receipt.success, receipt.error
    return receipt.created_address


def _wallet(chain: Blockchain) -> bytes:
    return _deploy(chain, stdlib.simple_wallet("W", ALICE))


def test_empty_account_is_no_code(detector: ProxyDetector) -> None:
    check = detector.check(b"\x00" * 19 + b"\x01")
    assert not check.is_proxy
    assert check.reason is NotProxyReason.NO_CODE


def test_wallet_fails_prefilter(chain: Blockchain,
                                detector: ProxyDetector) -> None:
    check = detector.check(_wallet(chain))
    assert not check.is_proxy
    assert check.reason is NotProxyReason.NO_DELEGATECALL


def test_minimal_proxy_detected_hardcoded(chain: Blockchain,
                                          detector: ProxyDetector) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.minimal_proxy_init(wallet))
    check = detector.check(proxy)
    assert check.is_proxy
    assert check.logic_address == wallet
    assert check.logic_location is LogicLocation.HARDCODED
    assert check.logic_slot is None


def test_storage_proxy_detected_with_slot(chain: Blockchain,
                                          detector: ProxyDetector) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    check = detector.check(proxy)
    assert check.is_proxy
    assert check.logic_address == wallet
    assert check.logic_location is LogicLocation.STORAGE
    assert check.logic_slot == 1


def test_eip1967_slot_identified(chain: Blockchain,
                                 detector: ProxyDetector) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.eip1967_proxy("P", wallet, ALICE))
    check = detector.check(proxy)
    assert check.is_proxy
    assert check.logic_slot == EIP1967_IMPLEMENTATION_SLOT


def test_eip1822_slot_identified(chain: Blockchain,
                                 detector: ProxyDetector) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.eip1822_proxy("P", wallet))
    check = detector.check(proxy)
    assert check.is_proxy
    assert check.logic_slot == EIP1822_PROXIABLE_SLOT


def test_transparent_proxy_detected_for_users(chain: Blockchain,
                                              detector: ProxyDetector) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.transparent_proxy("P", wallet, ALICE))
    check = detector.check(proxy)
    assert check.is_proxy  # the probe sender is not the admin


def test_library_user_excluded(chain: Blockchain,
                               detector: ProxyDetector) -> None:
    """The precision edge over CRUSH/Etherscan (§2.2, §6.2): DELEGATECALL
    exists, but the forwarded input is re-encoded, not the raw calldata."""
    library = _deploy(chain, stdlib.math_library())
    user = _deploy(chain, stdlib.library_user("U", library))
    check = detector.check(user)
    assert not check.is_proxy
    assert check.reason is NotProxyReason.NO_FORWARD


def test_call_forwarder_excluded(chain: Blockchain,
                                 detector: ProxyDetector) -> None:
    wallet = _wallet(chain)
    forwarder = _deploy(chain, stdlib.call_forwarder("F", wallet))
    check = detector.check(forwarder)
    assert not check.is_proxy
    assert check.reason is NotProxyReason.NO_DELEGATECALL


def test_diamond_missed_by_default(chain: Blockchain,
                                   detector: ProxyDetector) -> None:
    """§8.1: random-selector probing cannot reach a diamond's delegation."""
    diamond = _deploy(chain, stdlib.diamond_proxy("D", ALICE))
    wallet = _wallet(chain)
    selector = int.from_bytes(encode_call("ownerOf()")[:4], "big")
    chain.transact(ALICE, diamond,
                   encode_call("registerFacet(uint32,address)",
                               [selector, wallet]))
    check = detector.check(diamond)
    assert not check.is_proxy
    assert check.reason is NotProxyReason.NO_FORWARD


def test_diamond_found_with_extra_probes(chain: Blockchain,
                                         detector: ProxyDetector) -> None:
    """§8.2: replaying a registered selector as an extra probe finds it."""
    diamond = _deploy(chain, stdlib.diamond_proxy("D", ALICE))
    wallet = _wallet(chain)
    selector_bytes = encode_call("ownerOf()")[:4]
    chain.transact(ALICE, diamond,
                   encode_call("registerFacet(uint32,address)",
                               [int.from_bytes(selector_bytes, "big"), wallet]))
    check = detector.check(diamond,
                           extra_probes=(selector_bytes + b"\x00" * 64,))
    assert check.is_proxy
    assert check.logic_address == wallet


def test_weird_bytecode_is_emulation_error(chain: Blockchain,
                                           detector: ProxyDetector) -> None:
    address = _deploy(chain, stdlib.raw_deploy_init(
        stdlib.WEIRD_DELEGATECALL_RUNTIME))
    check = detector.check(address)
    assert not check.is_proxy
    assert check.reason is NotProxyReason.EMULATION_ERROR
    assert check.emulation_error


def test_logic_contract_itself_is_not_a_proxy(chain: Blockchain,
                                              detector: ProxyDetector) -> None:
    logic = _deploy(chain, stdlib.audius_logic())
    check = detector.check(logic)
    assert not check.is_proxy


def test_probe_does_not_mutate_chain_state(chain: Blockchain,
                                           detector: ProxyDetector) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    slot1_before = chain.state.get_storage(proxy, 1)
    blocks_before = chain.latest_block_number
    detector.check(proxy)
    assert chain.state.get_storage(proxy, 1) == slot1_before
    assert chain.latest_block_number == blocks_before


def test_detection_works_without_transactions(chain: Blockchain,
                                              detector: ProxyDetector) -> None:
    """The headline capability: zero-transaction (hidden) proxies."""
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.storage_proxy("Hidden", wallet, ALICE))
    assert not chain.has_transactions(proxy)
    assert detector.check(proxy).is_proxy


def test_proxy_whose_logic_reverts_is_still_a_proxy(chain: Blockchain,
                                                    detector: ProxyDetector) -> None:
    """Forwarding is judged by the delegatecall event, not the outcome."""
    logic = _deploy(chain, stdlib.simple_wallet("L", ALICE))  # probe reverts
    proxy = _deploy(chain, stdlib.storage_proxy("P", logic, ALICE))
    check = detector.check(proxy)
    assert check.is_proxy
