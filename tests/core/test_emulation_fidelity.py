"""Emulation-fidelity auditing (quantifying §8.1's discrepancy)."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.chain.node import ArchiveNode
from repro.core.emulation_fidelity import EmulationFidelityAuditor
from repro.evm import opcodes as op
from repro.lang import compile_contract, stdlib
from repro.utils import encode_call

from tests.conftest import ALICE, BOB

from tests.evm.helpers import asm, push


def test_pure_contract_replays_faithfully(chain: Blockchain) -> None:
    wallet = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    chain.transact(BOB, wallet, encode_call("ownerOf()"))
    auditor = EmulationFidelityAuditor(ArchiveNode(chain))
    report = auditor.audit([wallet])
    assert report.total == 1
    assert report.full_fidelity == 1.0


def test_proxy_forward_replays_with_same_targets(chain: Blockchain) -> None:
    wallet = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", wallet, ALICE)).init_code
    ).created_address
    chain.transact(BOB, proxy, encode_call("ownerOf()"))
    report = EmulationFidelityAuditor(ArchiveNode(chain)).audit([proxy])
    assert report.delegate_agreement == 1.0


def test_block_dependent_contract_diverges(chain: Blockchain) -> None:
    """A contract returning NUMBER gives different output under the
    latest-block environment — the §8.1 discrepancy class, observed."""
    runtime = asm(op.NUMBER, push(0), op.MSTORE, push(32), push(0), op.RETURN)
    address = chain.deploy(ALICE,
                           stdlib.raw_deploy_init(runtime)).created_address
    chain.transact(BOB, address, b"")
    chain.advance_to_block(chain.latest_block_number + 10_000)
    report = EmulationFidelityAuditor(ArchiveNode(chain)).audit([address])
    assert report.total == 1
    comparison = report.comparisons[0]
    assert comparison.verdict_matches          # still succeeds...
    assert not comparison.output_matches       # ...with a different number
    assert report.full_fidelity == 0.0


def test_upgraded_proxy_diverges_on_targets(chain: Blockchain) -> None:
    """Replaying a pre-upgrade transaction under *current* state forwards to
    the new implementation — state drift, the other discrepancy class."""
    old_logic = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("Old", ALICE)).init_code
    ).created_address
    new_logic = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("New", ALICE)).init_code
    ).created_address
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", old_logic, ALICE)).init_code
    ).created_address
    chain.transact(BOB, proxy, encode_call("ownerOf()"))  # hits old logic
    chain.transact(ALICE, proxy,
                   encode_call("setImplementation(address)", [new_logic]))
    auditor = EmulationFidelityAuditor(ArchiveNode(chain))
    report = auditor.audit([proxy])
    forward_replays = [c for c in report.comparisons
                       if not c.delegate_targets_match]
    assert forward_replays  # the pre-upgrade forward now goes elsewhere

    # With historical state, fidelity is restored.
    faithful = EmulationFidelityAuditor(
        ArchiveNode(chain), use_historical_state=True).audit([proxy])
    assert faithful.delegate_agreement == 1.0


def test_empty_history_reports_perfect(chain: Blockchain) -> None:
    report = EmulationFidelityAuditor(ArchiveNode(chain)).audit([b"\x01" * 20])
    assert report.total == 0
    assert report.full_fidelity == 1.0
