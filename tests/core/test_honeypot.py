"""Behavioural honeypot classification of function collisions."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.core.function_collision import FunctionCollisionDetector
from repro.core.honeypot import PROBE_VICTIM, HoneypotClassifier
from repro.lang import ast, compile_contract, stdlib

from tests.conftest import ALICE


def _deploy(chain: Blockchain, contract) -> bytes:
    receipt = chain.deploy(ALICE, compile_contract(contract).init_code)
    assert receipt.success
    return receipt.created_address


def _collide_and_classify(chain: Blockchain, proxy: bytes, logic: bytes):
    report = FunctionCollisionDetector().detect(
        chain.state.get_code(proxy), chain.state.get_code(logic),
        proxy, logic)
    assert report.has_collision
    classifier = HoneypotClassifier(chain.state, chain.block_context())
    return classifier.classify(proxy, report)


def test_listing1_honeypot_flagged(chain: Blockchain) -> None:
    logic = _deploy(chain, stdlib.honeypot_logic())
    pot = _deploy(chain, stdlib.honeypot_proxy("HP", logic, ALICE))
    verdicts = _collide_and_classify(chain, pot, logic)
    assert len(verdicts) == 1
    verdict = verdicts[0]
    assert verdict.selector.hex() == "df4a3106"
    assert verdict.is_honeypot_shaped
    assert verdict.victim_loss > 0
    assert verdict.beneficiary == ALICE  # the stored owner pocketed it


def test_benign_collision_not_flagged(chain: Blockchain) -> None:
    """A collision where the shadowing proxy function is a harmless view."""
    proxy_contract = ast.Contract(
        name="BenignShadow",
        variables=(ast.VarDecl("owner", "address"),
                   ast.VarDecl("logic", "address")),
        functions=(ast.Function(name="proxyType",
                                body=(ast.Return(ast.Const(2)),)),),
        fallback=ast.Fallback(body=(
            ast.DelegateForwardCalldata(ast.Load("logic")),)),
        constructor=(
            ast.Store("owner", ast.Const(int.from_bytes(ALICE, "big"))),
        ),
    )
    logic_contract = ast.Contract(
        name="ShadowedLogic",
        functions=(ast.Function(name="proxyType",
                                body=(ast.Return(ast.Const(1)),)),),
    )
    logic = _deploy(chain, logic_contract)
    proxy = _deploy(chain, proxy_contract)
    verdicts = _collide_and_classify(chain, proxy, logic)
    assert len(verdicts) == 1
    assert not verdicts[0].is_honeypot_shaped
    assert verdicts[0].call_succeeded


def test_wyvern_interface_collisions_are_benign(chain: Blockchain) -> None:
    """The mass-cloned OwnableDelegateProxy collisions (98.7% of Table 3)
    are inheritance artifacts, not traps."""
    logic = _deploy(chain, stdlib.wyvern_logic())
    proxy = _deploy(chain, stdlib.ownable_delegate_proxy("ODP", logic, ALICE))
    verdicts = _collide_and_classify(chain, proxy, logic)
    assert len(verdicts) == 3
    assert all(not verdict.is_honeypot_shaped for verdict in verdicts)


def test_probe_never_touches_real_state(chain: Blockchain) -> None:
    logic = _deploy(chain, stdlib.honeypot_logic())
    pot = _deploy(chain, stdlib.honeypot_proxy("HP", logic, ALICE))
    alice_before = chain.state.get_balance(ALICE)
    _collide_and_classify(chain, pot, logic)
    assert chain.state.get_balance(ALICE) == alice_before
    assert chain.state.get_balance(PROBE_VICTIM) == 0
