"""Function- and storage-collision detectors (§5)."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.chain.explorer import SourceRegistry
from repro.core.function_collision import FunctionCollisionDetector
from repro.core.standards import ProxyStandard, classify_standard
from repro.core.proxy_detector import ProxyDetector
from repro.core.storage_collision import StorageCollisionDetector
from repro.lang import ast, compile_contract, contract_source_of, stdlib
from repro.utils import function_selector

from tests.conftest import ALICE


def _deploy(chain: Blockchain, contract) -> bytes:
    receipt = chain.deploy(ALICE, compile_contract(contract).init_code)
    assert receipt.success
    return receipt.created_address


# ---------------------------------------------------------- function (§5.1)
def test_honeypot_collision_from_bytecode(chain: Blockchain) -> None:
    proxy_ast = stdlib.honeypot_proxy("HP", b"\x01" * 20, ALICE)
    logic_ast = stdlib.honeypot_logic()
    detector = FunctionCollisionDetector()
    report = detector.detect(compile_contract(proxy_ast).runtime_code,
                             compile_contract(logic_ast).runtime_code)
    assert report.has_collision
    assert report.proxy_mode == "bytecode"
    assert [c.selector.hex() for c in report.collisions] == ["df4a3106"]
    assert report.collisions[0].proxy_prototype is None  # names unknown


def test_honeypot_collision_with_source_names(chain: Blockchain) -> None:
    registry = SourceRegistry()
    proxy_ast = stdlib.honeypot_proxy("HP", b"\x01" * 20, ALICE)
    logic_ast = stdlib.honeypot_logic()
    proxy = compile_contract(proxy_ast)
    logic = compile_contract(logic_ast)
    registry.verify(b"\x0a" * 20, contract_source_of(proxy_ast),
                    proxy.runtime_code)
    registry.verify(b"\x0b" * 20, contract_source_of(logic_ast),
                    logic.runtime_code)
    detector = FunctionCollisionDetector(registry)
    report = detector.detect(proxy.runtime_code, logic.runtime_code,
                             b"\x0a" * 20, b"\x0b" * 20)
    assert report.proxy_mode == "source"
    assert report.collisions[0].proxy_prototype == "impl_LUsXCWD2AKCc()"
    assert report.collisions[0].logic_prototype == "free_ether_withdrawal()"


def test_mixed_mode_source_and_bytecode() -> None:
    """One side verified, the other hidden — still detected (Table 1)."""
    registry = SourceRegistry()
    proxy_ast = stdlib.honeypot_proxy("HP", b"\x01" * 20, ALICE)
    proxy = compile_contract(proxy_ast)
    logic = compile_contract(stdlib.honeypot_logic())
    registry.verify(b"\x0a" * 20, contract_source_of(proxy_ast),
                    proxy.runtime_code)
    detector = FunctionCollisionDetector(registry)
    report = detector.detect(proxy.runtime_code, logic.runtime_code,
                             b"\x0a" * 20, b"\x0b" * 20)
    assert report.proxy_mode == "source"
    assert report.logic_mode == "bytecode"
    assert report.has_collision


def test_wyvern_three_way_collision() -> None:
    proxy = compile_contract(
        stdlib.ownable_delegate_proxy("ODP", b"\x01" * 20, ALICE))
    logic = compile_contract(stdlib.wyvern_logic())
    report = FunctionCollisionDetector().detect(proxy.runtime_code,
                                                logic.runtime_code)
    selectors = {c.selector for c in report.collisions}
    assert selectors == {function_selector("proxyType()"),
                         function_selector("implementation()"),
                         function_selector("upgradeabilityOwner()")}


def test_disjoint_functions_no_collision() -> None:
    proxy = compile_contract(stdlib.storage_proxy("P", b"\x01" * 20, ALICE))
    logic = compile_contract(stdlib.simple_wallet("W", ALICE))
    report = FunctionCollisionDetector().detect(proxy.runtime_code,
                                                logic.runtime_code)
    assert not report.has_collision


# ----------------------------------------------------------- storage (§5.2)
def test_audius_collision_bytecode_mode(chain: Blockchain) -> None:
    """Hidden-contract storage collision with a *verified* exploit."""
    logic = _deploy(chain, stdlib.audius_logic())
    proxy = _deploy(chain, stdlib.audius_proxy("AP", logic, ALICE))
    detector = StorageCollisionDetector(None, chain.state,
                                        chain.block_context())
    report = detector.detect(chain.state.get_code(proxy),
                             chain.state.get_code(logic), proxy, logic)
    assert report.has_collision
    assert report.proxy_mode == "bytecode"
    assert report.has_verified_exploit
    exploited = [c for c in report.collisions if c.verified]
    assert exploited[0].exploit_selector == function_selector("initialize()")
    assert exploited[0].sensitive


def test_exploit_verification_does_not_mutate_chain(chain: Blockchain) -> None:
    logic = _deploy(chain, stdlib.audius_logic())
    proxy = _deploy(chain, stdlib.audius_proxy("AP", logic, ALICE))
    slot0 = chain.state.get_storage(proxy, 0)
    detector = StorageCollisionDetector(None, chain.state,
                                        chain.block_context())
    detector.detect(chain.state.get_code(proxy), chain.state.get_code(logic),
                    proxy, logic)
    assert chain.state.get_storage(proxy, 0) == slot0


def test_compatible_layouts_no_collision(chain: Blockchain) -> None:
    logic_ast = ast.Contract(
        name="Compat",
        variables=(ast.VarDecl("owner", "address"),
                   ast.VarDecl("logic", "address"),
                   ast.VarDecl("extra", "uint256")),
        functions=(ast.Function(name="ownerOf",
                                body=(ast.Return(ast.Load("owner")),)),),
    )
    logic = _deploy(chain, logic_ast)
    proxy = _deploy(chain, stdlib.storage_proxy("P", logic, ALICE))
    detector = StorageCollisionDetector(None, chain.state,
                                        chain.block_context())
    report = detector.detect(chain.state.get_code(proxy),
                             chain.state.get_code(logic), proxy, logic)
    assert not report.has_collision


def test_renamed_padding_not_flagged(chain: Blockchain,
                                     ) -> None:
    """Same slots, same types, different names: padding, not a collision —
    the FP class Table 2 charges USCHunt with."""
    registry = SourceRegistry()
    logic_ast = ast.Contract(
        name="Renamed",
        variables=(ast.VarDecl("gapA", "address"),
                   ast.VarDecl("gapB", "address")),
        functions=(ast.Function(name="peek",
                                body=(ast.Return(ast.Load("gapA")),)),),
    )
    proxy_ast = stdlib.storage_proxy("P", b"\x01" * 20, ALICE)
    logic_compiled = compile_contract(logic_ast)
    proxy_compiled = compile_contract(proxy_ast)
    logic = _deploy(chain, logic_ast)
    proxy = _deploy(chain, stdlib.storage_proxy("P2", logic, ALICE))
    registry.verify(proxy, contract_source_of(proxy_ast),
                    proxy_compiled.runtime_code)
    registry.verify(logic, contract_source_of(logic_ast),
                    logic_compiled.runtime_code)
    detector = StorageCollisionDetector(registry, chain.state,
                                        chain.block_context())
    report = detector.detect(chain.state.get_code(proxy),
                             chain.state.get_code(logic), proxy, logic)
    # address vs address at identical ranges: compatible.
    assert not report.has_collision


def test_uint_over_address_is_collision(chain: Blockchain) -> None:
    logic_ast = ast.Contract(
        name="Shifted",
        variables=(ast.VarDecl("count", "uint256"),),
        functions=(ast.Function(name="bump",
                                body=(ast.Store("count", ast.Const(5)),)),),
    )
    logic = _deploy(chain, logic_ast)
    proxy = _deploy(chain, stdlib.storage_proxy("P", logic, ALICE))
    detector = StorageCollisionDetector(None, chain.state,
                                        chain.block_context())
    report = detector.detect(chain.state.get_code(proxy),
                             chain.state.get_code(logic), proxy, logic)
    assert report.has_collision
    assert report.has_verified_exploit  # bump() through the proxy hits owner


def test_symbolic_slot_write_is_honest_miss(chain: Blockchain) -> None:
    logic_ast = ast.Contract(
        name="Raw",
        functions=(ast.Function(
            name="writeRaw", params=(("s", "uint256"), ("v", "uint256")),
            body=(ast.StoreAt(ast.Param(0, "uint256"),
                              ast.Param(1, "uint256")),)),),
    )
    logic = _deploy(chain, logic_ast)
    proxy = _deploy(chain, stdlib.storage_proxy("P", logic, ALICE))
    detector = StorageCollisionDetector(None, chain.state,
                                        chain.block_context())
    report = detector.detect(chain.state.get_code(proxy),
                             chain.state.get_code(logic), proxy, logic)
    assert not report.has_collision  # symbolic slot: undecidable statically


def test_mapping_slots_do_not_collide_with_scalars(chain: Blockchain) -> None:
    token = _deploy(chain, stdlib.simple_token("T", ALICE))
    proxy = _deploy(chain, stdlib.storage_proxy("P", token, ALICE))
    detector = StorageCollisionDetector(None, chain.state,
                                        chain.block_context())
    report = detector.detect(chain.state.get_code(proxy),
                             chain.state.get_code(token), proxy, token)
    # token: totalSupply slot0 (uint256 full) vs proxy owner (address) → the
    # slot-0 overlap IS a collision; mapping slots must not add more.
    mapping_collisions = [c for c in report.collisions
                          if c.slot.kind == "mapping"]
    assert mapping_collisions == []


# ----------------------------------------------------------- standards
def test_standard_classification(chain: Blockchain) -> None:
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    detector = ProxyDetector(chain.state, chain.block_context())

    minimal = chain.deploy(ALICE, stdlib.minimal_proxy_init(wallet)).created_address
    assert classify_standard(detector.check(minimal)) is ProxyStandard.EIP1167

    p1967 = _deploy(chain, stdlib.eip1967_proxy("A", wallet, ALICE))
    assert classify_standard(detector.check(p1967)) is ProxyStandard.EIP1967

    p1822 = _deploy(chain, stdlib.eip1822_proxy("B", wallet))
    assert classify_standard(detector.check(p1822)) is ProxyStandard.EIP1822

    custom = _deploy(chain, stdlib.storage_proxy("C", wallet, ALICE))
    assert classify_standard(detector.check(custom)) is ProxyStandard.OTHER


def test_classify_rejects_non_proxy(chain: Blockchain) -> None:
    import pytest
    wallet = _deploy(chain, stdlib.simple_wallet("W", ALICE))
    detector = ProxyDetector(chain.state, chain.block_context())
    with pytest.raises(ValueError):
        classify_standard(detector.check(wallet))
