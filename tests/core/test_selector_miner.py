"""Selector-collision mining (the §2.3 attacker experiment)."""

from __future__ import annotations

import pytest

from repro.core.selector_miner import (
    MiningResult,
    _matches,
    estimate_full_collision_attempts,
    estimate_full_collision_hours,
    mine_selector,
    mining_rate,
)
from repro.utils.abi import function_selector


def test_matches_full_and_prefix() -> None:
    assert _matches(b"\xde\xad\xbe\xef", b"\xde\xad\xbe\xef", 32)
    assert not _matches(b"\xde\xad\xbe\xee", b"\xde\xad\xbe\xef", 32)
    assert _matches(b"\xde\xad\x00\x00", b"\xde\xad\xff\xff", 16)
    assert _matches(b"\xde\xa0\x00\x00", b"\xde\xaf\xff\xff", 12)
    assert not _matches(b"\xde\xb0\x00\x00", b"\xde\xaf\xff\xff", 12)


def test_mine_12bit_collision_found() -> None:
    target = function_selector("free_ether_withdrawal()")
    result = mine_selector(target, prefix_bits=12, max_attempts=200_000)
    assert result.found
    mined = function_selector(result.prototype)
    assert _matches(mined, target, 12)
    # Expected ~2^11 = 2048 attempts; generous bound.
    assert result.attempts < 100_000


def test_mined_prototype_is_valid_and_distinct() -> None:
    target = function_selector("transfer(address,uint256)")
    result = mine_selector(target, prefix_bits=10, max_attempts=100_000)
    assert result.found
    assert result.prototype != "transfer(address,uint256)"
    assert result.prototype.endswith("()")


def test_not_found_within_budget() -> None:
    result = mine_selector(b"\x00\x00\x00\x01", prefix_bits=32,
                           max_attempts=50)
    assert not result.found
    assert result.attempts == 50


def test_rejects_bad_inputs() -> None:
    with pytest.raises(ValueError):
        mine_selector(b"\x00" * 3)
    with pytest.raises(ValueError):
        mine_selector(b"\x00" * 4, prefix_bits=0)
    with pytest.raises(ValueError):
        mine_selector(b"\x00" * 4, prefix_bits=33)


def test_rate_and_extrapolation() -> None:
    rate = mining_rate(sample_attempts=500)
    assert rate > 100  # even pure Python manages hundreds of H/s
    assert estimate_full_collision_attempts() == 2 ** 31
    hours = estimate_full_collision_hours(rate)
    assert hours > 0


def test_result_properties() -> None:
    result = MiningResult(prototype="x()", attempts=10, seconds=2.0,
                          target=b"\x00" * 4, matched_bits=8)
    assert result.found
    assert result.attempts_per_second == 5.0
