"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command() -> None:
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_survey_command(capsys) -> None:
    assert main(["survey", "--total", "60", "--seed", "3"]) == 0
    output = capsys.readouterr().out
    assert "proxies:" in output
    assert "EIP-1167" in output
    assert "never-upgraded" in output


def test_survey_with_diamonds(capsys) -> None:
    assert main(["survey", "--total", "40", "--seed", "5",
                 "--diamonds"]) == 0
    assert "proxies:" in capsys.readouterr().out


def test_accuracy_command(capsys) -> None:
    assert main(["accuracy", "--pairs", "2", "--seed", "1"]) == 0
    output = capsys.readouterr().out
    assert "methodology: union" in output
    assert "Proxion" in output and "USCHunt" in output and "CRUSH" in output


def test_mine_selector_success(capsys) -> None:
    assert main(["mine-selector", "free_ether_withdrawal()",
                 "--bits", "8", "--max-attempts", "100000"]) == 0
    output = capsys.readouterr().out
    assert "0xdf4a3106" in output
    assert "found" in output


def test_mine_selector_budget_exhausted(capsys) -> None:
    assert main(["mine-selector", "transfer(address,uint256)",
                 "--bits", "32", "--max-attempts", "10"]) == 1
    assert "not found" in capsys.readouterr().out


def test_demo_quickstart(capsys) -> None:
    assert main(["demo", "quickstart"]) == 0
    output = capsys.readouterr().out
    assert "is proxy:        True" in output


def test_demo_rejects_unknown() -> None:
    with pytest.raises(SystemExit):
        main(["demo", "nonsense"])


def test_bench_list(capsys) -> None:
    assert main(["bench", "--list"]) == 0
    output = capsys.readouterr().out
    assert "proxy_check" in output and "selector_mining" in output


def test_bench_writes_schema_valid_payload(tmp_path, capsys) -> None:
    import json

    from repro.obs.bench import validate_payload

    target = tmp_path / "BENCH_test.json"
    assert main(["bench", "--quick", "--repeats", "1", "--warmup", "0",
                 "--workloads", "proxy_check,logic_recovery",
                 "--out", str(target)]) == 0
    output = capsys.readouterr().out
    assert "repro bench" in output and "proxy_check" in output
    payload = json.loads(target.read_text())
    assert validate_payload(payload) == []


def test_bench_compare_missing_baseline_passes(tmp_path, capsys) -> None:
    target = tmp_path / "BENCH_test.json"
    assert main(["bench", "--repeats", "1", "--warmup", "0",
                 "--workloads", "logic_recovery",
                 "--out", str(target),
                 "--compare", str(tmp_path / "absent.json")]) == 0
    assert "comparison skipped" in capsys.readouterr().out


def test_bench_compare_regression_fails(tmp_path, capsys) -> None:
    import json

    target = tmp_path / "BENCH_test.json"
    assert main(["bench", "--repeats", "1", "--warmup", "0",
                 "--workloads", "logic_recovery",
                 "--out", str(target)]) == 0
    baseline = json.loads(target.read_text())
    for row in baseline["workloads"].values():
        row["stats"]["median"] /= 10  # current looks 10x slower
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline), encoding="utf-8")
    capsys.readouterr()
    assert main(["bench", "--repeats", "1", "--warmup", "0",
                 "--workloads", "logic_recovery",
                 "--out", str(target),
                 "--compare", str(baseline_path)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_bench_rejects_unknown_workload(tmp_path, capsys) -> None:
    assert main(["bench", "--workloads", "nonsense",
                 "--out", str(tmp_path / "b.json")]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_bench_unwritable_out_errors(capsys) -> None:
    assert main(["bench", "--repeats", "1", "--warmup", "0",
                 "--workloads", "logic_recovery",
                 "--out", "/nope/BENCH.json"]) == 1
    assert "/nope/BENCH.json" in capsys.readouterr().err


def test_survey_flame_writes_collapsed_stacks(tmp_path, capsys) -> None:
    flame = tmp_path / "flame.collapsed"
    assert main(["survey", "--total", "30", "--seed", "5",
                 "--flame", str(flame)]) == 0
    assert "flame" in capsys.readouterr().out
    lines = flame.read_text().strip().splitlines()
    assert lines
    stack, _, count = lines[0].rpartition(" ")
    assert int(count) > 0 and ":" in stack


def test_survey_chaos_transient_matches_fault_free(capsys) -> None:
    import json
    assert main(["survey", "--total", "40", "--seed", "5", "--json"]) == 0
    baseline = json.loads(capsys.readouterr().out)
    assert main(["survey", "--total", "40", "--seed", "5", "--json",
                 "--metrics", "--chaos", "transient"]) == 0
    chaotic = json.loads(capsys.readouterr().out)
    assert chaotic["contracts"] == baseline["contracts"]
    assert chaotic["summary"]["quarantined"]["contracts"] == 0
    retries = sum(value for key, value
                  in chaotic["metrics"]["counters"].items()
                  if key.startswith("resilience.retries"))
    assert retries > 0


def test_survey_chaos_outage_quarantines_gracefully(capsys) -> None:
    assert main(["survey", "--total", "40", "--seed", "5",
                 "--chaos", "outage"]) == 0
    output = capsys.readouterr().out
    assert "quarantined:" in output
    assert "circuit-open" in output or "deadline-exceeded" in output


def test_survey_checkpoint_and_resume(tmp_path, capsys) -> None:
    import json
    checkpoint = str(tmp_path / "sweep.ckpt")
    assert main(["survey", "--total", "40", "--seed", "5", "--json",
                 "--checkpoint", checkpoint]) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(["survey", "--total", "40", "--seed", "5", "--json",
                 "--checkpoint", checkpoint, "--resume"]) == 0
    resumed = json.loads(capsys.readouterr().out)
    first["summary"].pop("dedup")
    resumed["summary"].pop("dedup")
    assert resumed == first


def test_survey_resume_without_checkpoint_errors(capsys) -> None:
    assert main(["survey", "--total", "40", "--resume"]) == 2
    assert "--resume requires --checkpoint" in capsys.readouterr().err


def test_survey_parallel_json_matches_serial(capsys) -> None:
    import json
    assert main(["survey", "--total", "40", "--seed", "5", "--json"]) == 0
    serial = capsys.readouterr().out
    assert main(["survey", "--total", "40", "--seed", "5", "--json",
                 "--workers", "3"]) == 0
    parallel = capsys.readouterr().out
    assert json.loads(parallel) == json.loads(serial)


def test_survey_parallel_rejects_per_process_outputs(tmp_path,
                                                     capsys) -> None:
    assert main(["survey", "--total", "20", "--workers", "2",
                 "--flame", str(tmp_path / "x.folded")]) == 2
    assert "--flame" in capsys.readouterr().err
    assert main(["survey", "--total", "20", "--workers", "2",
                 "--trace-jsonl", str(tmp_path / "x.jsonl")]) == 2
    assert "--trace-jsonl" in capsys.readouterr().err


def test_survey_parallel_checkpoints_per_shard(tmp_path, capsys) -> None:
    import json
    import os
    from repro.landscape import shard_checkpoint_path

    base = str(tmp_path / "sweep.ckpt")
    assert main(["survey", "--total", "40", "--seed", "5", "--json",
                 "--workers", "2", "--checkpoint", base]) == 0
    first = json.loads(capsys.readouterr().out)
    assert os.path.exists(shard_checkpoint_path(base, 0))
    assert os.path.exists(shard_checkpoint_path(base, 1))
    assert main(["survey", "--total", "40", "--seed", "5", "--json",
                 "--workers", "2", "--checkpoint", base, "--resume"]) == 0
    resumed = json.loads(capsys.readouterr().out)
    assert resumed["contracts"] == first["contracts"]


def test_survey_parallel_chaos_matches_clean_sweep(capsys) -> None:
    import json
    assert main(["survey", "--total", "40", "--seed", "5", "--json"]) == 0
    baseline = json.loads(capsys.readouterr().out)
    assert main(["survey", "--total", "40", "--seed", "5", "--json",
                 "--workers", "3", "--chaos", "transient"]) == 0
    chaotic = json.loads(capsys.readouterr().out)
    assert chaotic == baseline


def test_survey_events_journal_status_and_tail(tmp_path, capsys) -> None:
    import json
    journal = str(tmp_path / "sweep.events.jsonl")
    assert main(["survey", "--total", "30", "--seed", "5",
                 "--events", journal]) == 0
    capsys.readouterr()

    assert main(["status", journal]) == 0
    rendered = capsys.readouterr().out
    assert "sweep finished" in rendered

    assert main(["status", journal, "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["schema"] == "repro.query/1"
    assert snapshot["kind"] == "status"
    assert snapshot["status"]["finished"] and snapshot["status"]["started"]
    assert snapshot["status"]["events"] > 0

    assert main(["tail", journal]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert any("sweep.start" in line for line in lines)
    assert any("sweep.end" in line for line in lines)


def test_survey_parallel_events_journal_merges_workers(tmp_path,
                                                       capsys) -> None:
    from repro.obs.events import SWEEP_END, read_journal
    journal = str(tmp_path / "sweep.events.jsonl")
    assert main(["survey", "--total", "24", "--seed", "7", "--workers", "2",
                 "--events", journal]) == 0
    loaded = read_journal(journal)
    assert {event.kind for event in loaded.events} >= {"sweep.start",
                                                       "worker.spawn",
                                                       SWEEP_END}
    # Worker pipeline events keep their own pid in the merged journal.
    assert len({event.pid for event in loaded.events}) > 1


def test_survey_serve_obs_announces_url(tmp_path, capsys) -> None:
    journal = str(tmp_path / "sweep.events.jsonl")
    assert main(["survey", "--total", "20", "--seed", "3",
                 "--events", journal, "--serve-obs", "0"]) == 0
    assert "obs: serving /metrics /healthz /progress at http://127.0.0.1:" \
        in capsys.readouterr().out


def test_survey_events_unwritable_path_errors(tmp_path, capsys) -> None:
    assert main(["survey", "--total", "20",
                 "--events", str(tmp_path / "no-dir" / "x.jsonl")]) == 2
    assert "cannot write --events journal" in capsys.readouterr().err


def test_status_and_tail_reject_bad_journals(tmp_path, capsys) -> None:
    absent = str(tmp_path / "absent.jsonl")
    assert main(["status", absent]) == 2
    assert "error:" in capsys.readouterr().err
    foreign = tmp_path / "foreign.jsonl"
    foreign.write_text('{"schema":"repro.checkpoint/1"}\n')
    assert main(["tail", str(foreign)]) == 2
    assert "error:" in capsys.readouterr().err


def test_survey_audit_then_explain_round_trip(tmp_path, capsys) -> None:
    from repro.obs.provenance import SCHEMA, AuditDir
    audit = str(tmp_path / "audit")
    assert main(["survey", "--total", "30", "--seed", "3",
                 "--audit", audit]) == 0
    capsys.readouterr()
    addresses = AuditDir(audit).addresses()
    assert addresses

    rendered = "0x" + addresses[0].hex()
    assert main(["explain", rendered, "--audit", audit]) == 0
    narrative = capsys.readouterr().out
    assert narrative.startswith(f"evidence for {rendered} ({SCHEMA})")
    assert "proxy detection" in narrative

    assert main(["explain", rendered, "--audit", audit, "--json"]) == 0
    import json
    record = json.loads(capsys.readouterr().out)
    assert record["schema"] == "repro.query/1"
    assert record["kind"] == "evidence"
    assert record["source"] == "audit"
    assert record["address"] == rendered
    # The full repro.evidence/1 trail nests unchanged inside the envelope.
    assert record["evidence"]["schema"] == SCHEMA
    assert record["evidence"]["address"] == rendered
    assert record["evidence"]["evidence"]


def test_survey_audit_parallel_matches_serial(tmp_path, capsys) -> None:
    import filecmp
    import json
    from repro.obs.provenance import AuditDir
    serial_dir = str(tmp_path / "serial")
    parallel_dir = str(tmp_path / "parallel")
    assert main(["survey", "--total", "30", "--seed", "7", "--json",
                 "--audit", serial_dir]) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main(["survey", "--total", "30", "--seed", "7", "--json",
                 "--workers", "2", "--audit", parallel_dir]) == 0
    parallel = json.loads(capsys.readouterr().out)
    assert parallel == serial
    # Every analysis carries an evidence digest when audited.
    assert all("evidence" in contract for contract in serial["contracts"])
    serial_addrs = AuditDir(serial_dir).addresses()
    assert serial_addrs == AuditDir(parallel_dir).addresses()
    for address in serial_addrs:
        a = AuditDir(serial_dir).read(address)
        b = AuditDir(parallel_dir).read(address)
        assert a.to_dict() == b.to_dict()
    assert not filecmp.dircmp(serial_dir, parallel_dir).right_only


def test_survey_without_audit_has_no_evidence_key(capsys) -> None:
    import json
    assert main(["survey", "--total", "30", "--seed", "7", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert all("evidence" not in contract
               for contract in report["contracts"])


def test_survey_audit_unwritable_dir_errors(tmp_path, capsys) -> None:
    blocker = tmp_path / "file"
    blocker.write_text("not a directory")
    assert main(["survey", "--total", "20",
                 "--audit", str(blocker / "audit")]) == 2
    assert "audit" in capsys.readouterr().err


def test_explain_fresh_analysis_matches_audited(tmp_path, capsys) -> None:
    import json
    from repro.obs.provenance import AuditDir
    audit = str(tmp_path / "audit")
    assert main(["survey", "--total", "30", "--seed", "3",
                 "--audit", audit]) == 0
    capsys.readouterr()
    rendered = "0x" + AuditDir(audit).addresses()[0].hex()
    assert main(["explain", rendered, "--audit", audit, "--json"]) == 0
    from_audit = json.loads(capsys.readouterr().out)
    assert main(["explain", rendered, "--total", "30", "--seed", "3",
                 "--json"]) == 0
    fresh = json.loads(capsys.readouterr().out)
    # Same trail either way; only the envelope's provenance differs.
    assert fresh["evidence"] == from_audit["evidence"]
    assert from_audit["source"] == "audit" and fresh["source"] == "fresh"


def test_explain_rejects_bad_addresses(tmp_path, capsys) -> None:
    assert main(["explain", "not-hex"]) == 2
    assert "address" in capsys.readouterr().err
    assert main(["explain", "0xabcd"]) == 2
    assert "20-byte" in capsys.readouterr().err
    assert main(["explain", "0x" + "11" * 20,
                 "--audit", str(tmp_path / "empty")]) == 2
    assert "no evidence" in capsys.readouterr().err


def test_accuracy_events_journal(tmp_path, capsys) -> None:
    import json
    journal = str(tmp_path / "acc.events.jsonl")
    assert main(["accuracy", "--pairs", "2", "--seed", "1",
                 "--events", journal]) == 0
    capsys.readouterr()
    assert main(["status", journal, "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["status"]["finished"] and snapshot["status"]["started"]


def test_accuracy_metrics_prom_and_trace(tmp_path, capsys) -> None:
    prom = tmp_path / "acc.prom"
    trace = tmp_path / "acc.jsonl"
    assert main(["accuracy", "--pairs", "2", "--seed", "1",
                 "--metrics-prom", str(prom),
                 "--trace-jsonl", str(trace)]) == 0
    assert "# TYPE" in prom.read_text()
    assert trace.read_text().count("\n") >= 2


def test_survey_store_persists_and_resweeps_incrementally(tmp_path,
                                                          capsys) -> None:
    store = str(tmp_path / "sweep.store")
    assert main(["survey", "--total", "50", "--seed", "4",
                 "--store", store]) == 0
    assert "sweep persisted to" in capsys.readouterr().out
    assert main(["survey", "--total", "50", "--seed", "4",
                 "--store", store, "--incremental"]) == 0
    assert "restored, not re-analyzed" in capsys.readouterr().out


def test_survey_store_json_matches_serial(capsys, tmp_path) -> None:
    store = str(tmp_path / "json.store")
    assert main(["survey", "--total", "50", "--seed", "4", "--json"]) == 0
    serial = capsys.readouterr().out
    assert main(["survey", "--total", "50", "--seed", "4", "--json",
                 "--store", store]) == 0
    assert capsys.readouterr().out == serial
    assert main(["survey", "--total", "50", "--seed", "4", "--json",
                 "--store", store, "--incremental", "--workers", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_survey_db_was_removed(tmp_path, capsys) -> None:
    # The deprecated alias is gone; the error names its replacement and
    # reassures that --db-written files still open (same file format).
    assert main(["survey", "--total", "40", "--seed", "5",
                 "--db", str(tmp_path / "legacy.db")]) == 2
    err = capsys.readouterr().err
    assert "--db was removed" in err
    assert "--store" in err
    # Passing both spellings fails the same way.
    assert main(["survey", "--total", "40",
                 "--db", str(tmp_path / "a.db"),
                 "--store", str(tmp_path / "b.store")]) == 2
    assert "--db was removed" in capsys.readouterr().err


def test_survey_incremental_without_store_errors(capsys) -> None:
    assert main(["survey", "--total", "40", "--incremental"]) == 2
    assert "--incremental requires --store" in capsys.readouterr().err


def test_store_subcommand_fsck_stats_vacuum(tmp_path, capsys) -> None:
    store = str(tmp_path / "maint.store")
    assert main(["survey", "--total", "40", "--seed", "5",
                 "--store", store]) == 0
    capsys.readouterr()
    assert main(["store", "fsck", store]) == 0
    assert "clean" in capsys.readouterr().out
    assert main(["store", "stats", store, "--json"]) == 0
    import json
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.store/1"
    assert payload["tables"]["analyses"] > 0
    assert main(["store", "vacuum", store]) == 0
    assert "reclaimed" in capsys.readouterr().out


def test_store_fsck_flags_and_repairs_damage(tmp_path, capsys) -> None:
    import sqlite3
    store = str(tmp_path / "damaged.store")
    assert main(["survey", "--total", "40", "--seed", "5",
                 "--store", store]) == 0
    capsys.readouterr()
    connection = sqlite3.connect(store)
    connection.execute("UPDATE proxy_verdicts SET check_json = '{oops' "
                       "WHERE rowid = 1")
    connection.commit()
    connection.close()
    assert main(["store", "fsck", store]) == 1
    assert "--repair" in capsys.readouterr().err
    assert main(["store", "fsck", store, "--repair"]) == 0
    assert "[repaired]" in capsys.readouterr().out
    assert main(["store", "fsck", store]) == 0


def test_store_fsck_missing_file_fails(tmp_path, capsys) -> None:
    assert main(["store", "fsck", str(tmp_path / "nope.store")]) == 1
    assert "no store" in capsys.readouterr().out
