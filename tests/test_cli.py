"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command() -> None:
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_survey_command(capsys) -> None:
    assert main(["survey", "--total", "60", "--seed", "3"]) == 0
    output = capsys.readouterr().out
    assert "proxies:" in output
    assert "EIP-1167" in output
    assert "never-upgraded" in output


def test_survey_with_diamonds(capsys) -> None:
    assert main(["survey", "--total", "40", "--seed", "5",
                 "--diamonds"]) == 0
    assert "proxies:" in capsys.readouterr().out


def test_accuracy_command(capsys) -> None:
    assert main(["accuracy", "--pairs", "2", "--seed", "1"]) == 0
    output = capsys.readouterr().out
    assert "methodology: union" in output
    assert "Proxion" in output and "USCHunt" in output and "CRUSH" in output


def test_mine_selector_success(capsys) -> None:
    assert main(["mine-selector", "free_ether_withdrawal()",
                 "--bits", "8", "--max-attempts", "100000"]) == 0
    output = capsys.readouterr().out
    assert "0xdf4a3106" in output
    assert "found" in output


def test_mine_selector_budget_exhausted(capsys) -> None:
    assert main(["mine-selector", "transfer(address,uint256)",
                 "--bits", "32", "--max-attempts", "10"]) == 1
    assert "not found" in capsys.readouterr().out


def test_demo_quickstart(capsys) -> None:
    assert main(["demo", "quickstart"]) == 0
    output = capsys.readouterr().out
    assert "is proxy:        True" in output


def test_demo_rejects_unknown() -> None:
    with pytest.raises(SystemExit):
        main(["demo", "nonsense"])
