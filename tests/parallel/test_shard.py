"""Deterministic address partitioning."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.parallel import STRATEGIES, shard_addresses

ADDRESSES = [bytes([i]) * 20 for i in range(1, 24)]


def test_roundrobin_balances_and_preserves_relative_order() -> None:
    partitions = shard_addresses(ADDRESSES, 4, "roundrobin")
    assert [len(p) for p in partitions] == [6, 6, 6, 5]
    for shard, partition in enumerate(partitions):
        assert partition == ADDRESSES[shard::4]


def test_partitions_are_disjoint_and_complete() -> None:
    for strategy in STRATEGIES:
        partitions = shard_addresses(ADDRESSES, 5, strategy,
                                     code_of=lambda a: a * 2)
        flat = [address for partition in partitions for address in partition]
        assert sorted(flat) == sorted(ADDRESSES)
        assert len(flat) == len(set(flat))


def test_codehash_groups_identical_code_on_one_shard() -> None:
    # Clone family: many addresses, one runtime code → one shard, so the
    # §6.1 caches see the whole family locally.
    family_code = b"\x60\x80" * 9
    partitions = shard_addresses(ADDRESSES, 4, "codehash",
                                 code_of=lambda a: family_code)
    populated = [p for p in partitions if p]
    assert len(populated) == 1
    assert populated[0] == ADDRESSES


def test_codehash_is_deterministic_across_calls() -> None:
    code_of = lambda a: a[:1] * 7  # noqa: E731
    first = shard_addresses(ADDRESSES, 3, "codehash", code_of=code_of)
    second = shard_addresses(list(ADDRESSES), 3, "codehash", code_of=code_of)
    assert first == second


def test_codehash_handles_codeless_addresses() -> None:
    partitions = shard_addresses(ADDRESSES, 3, "codehash",
                                 code_of=lambda a: b"")
    flat = [address for partition in partitions for address in partition]
    assert sorted(flat) == sorted(ADDRESSES)


def test_single_shard_is_the_identity_partition() -> None:
    assert shard_addresses(ADDRESSES, 1, "roundrobin") == [ADDRESSES]
    assert shard_addresses(ADDRESSES, 1, "codehash",
                           code_of=lambda a: a) == [ADDRESSES]


def test_bad_strategy_and_shard_count_are_rejected() -> None:
    with pytest.raises(ConfigurationError, match="unknown shard strategy"):
        shard_addresses(ADDRESSES, 2, "alphabetical")
    with pytest.raises(ConfigurationError, match="shard count"):
        shard_addresses(ADDRESSES, 0, "roundrobin")
