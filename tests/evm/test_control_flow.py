"""Jumps, halting, reverts, calldata/memory/environment opcodes."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.evm import opcodes as op
from repro.evm.environment import BlockContext

from tests.evm.helpers import (
    CONTRACT,
    SENDER,
    asm,
    push,
    return_top,
    run_and_get_int,
    run_code,
)


def test_stop_returns_empty() -> None:
    result = run_code(asm(op.STOP))
    assert result.success and result.output == b""


def test_implicit_stop_at_code_end() -> None:
    result = run_code(asm(push(1), op.POP))
    assert result.success and result.output == b""


def test_jump_to_jumpdest() -> None:
    # 0: PUSH1 4; 2: JUMP; 3: INVALID; 4: JUMPDEST; then return 7
    code = asm(push(4), op.JUMP, op.INVALID, op.JUMPDEST,
               push(7)) + return_top()
    assert run_and_get_int(code) == 7


def test_jump_to_non_jumpdest_fails() -> None:
    code = asm(push(3), op.JUMP, op.STOP)
    result = run_code(code)
    assert not result.success
    assert "InvalidJump" in (result.error or "")


def test_jumpdest_inside_push_immediate_is_invalid() -> None:
    # PUSH2 0x5b00 embeds a JUMPDEST byte at offset 1; jumping there must fail.
    code = asm(bytes([op.PUSH0 + 2, 0x5B, 0x00]), push(1), op.JUMP)
    result = run_code(code)
    assert not result.success


def _conditional_return(condition: int) -> bytes:
    """``condition ? return 1 : return 2`` with a fixed-width jump target."""
    prefix = asm(push(condition), push(0, 2), op.JUMPI, push(2)) + return_top()
    dest = len(prefix)
    return (asm(push(condition), push(dest, 2), op.JUMPI, push(2))
            + return_top() + asm(op.JUMPDEST, push(1)) + return_top())


def test_jumpi_taken() -> None:
    assert run_and_get_int(_conditional_return(1)) == 1


def test_jumpi_not_taken() -> None:
    assert run_and_get_int(_conditional_return(0)) == 2


def test_jumpi_truthiness_is_any_nonzero() -> None:
    assert run_and_get_int(_conditional_return(0xFFFF)) == 1


def test_revert_carries_output_and_rolls_back() -> None:
    # SSTORE(0, 7) then REVERT with "xy"
    payload = int.from_bytes(b"xy".ljust(32, b"\x00"), "big")
    code = asm(push(7), push(0), op.SSTORE,
               push(payload, 32), push(0), op.MSTORE,
               push(2), push(0), op.REVERT)
    from repro.evm.state import MemoryState
    state = MemoryState()
    result = run_code(code, state=state)
    assert not result.success
    assert result.error == "revert"
    assert result.output == b"xy"
    assert state.get_storage(CONTRACT, 0) == 0  # rolled back


def test_invalid_opcode_consumes_and_fails() -> None:
    result = run_code(asm(op.INVALID))
    assert not result.success


def test_unassigned_byte_fails() -> None:
    result = run_code(bytes([0x2F]))
    assert not result.success
    assert "InvalidOpcode" in (result.error or "")


def test_stack_underflow_reported() -> None:
    result = run_code(asm(op.ADD))
    assert not result.success
    assert "StackUnderflow" in (result.error or "")


def test_pc_msize_gas() -> None:
    assert run_and_get_int(asm(op.PC) + return_top()) == 0
    assert run_and_get_int(asm(push(0), op.PC) + return_top()) == 2
    # MSIZE after writing one word at 0 is 32
    assert run_and_get_int(asm(push(1), push(0), op.MSTORE, op.MSIZE)
                           + return_top()) == 32


def test_calldata_opcodes() -> None:
    calldata = bytes(range(1, 41))
    assert run_and_get_int(asm(op.CALLDATASIZE) + return_top(),
                           calldata) == 40
    loaded = run_and_get_int(asm(push(4), op.CALLDATALOAD) + return_top(),
                             calldata)
    assert loaded == int.from_bytes(calldata[4:36], "big")
    # Out-of-range load zero-pads.
    padded = run_and_get_int(asm(push(32), op.CALLDATALOAD) + return_top(),
                             calldata)
    assert padded == int.from_bytes(calldata[32:].ljust(32, b"\x00"), "big")


def test_calldatacopy_pads_with_zeros() -> None:
    code = asm(push(32), push(100), push(0), op.CALLDATACOPY,
               push(0), op.MLOAD) + return_top()
    assert run_and_get_int(code, b"\x01\x02") == 0


def test_codesize_codecopy() -> None:
    code = asm(op.CODESIZE) + return_top()
    assert run_and_get_int(code) == len(code)


def test_mstore8() -> None:
    code = asm(push(0xAB), push(31), op.MSTORE8, push(0), op.MLOAD) + return_top()
    assert run_and_get_int(code) == 0xAB


@given(st.integers(min_value=0, max_value=(1 << 256) - 1),
       st.integers(min_value=0, max_value=4))
def test_mstore_mload_roundtrip(value: int, word_index: int) -> None:
    offset = word_index * 32
    code = asm(push(value, 32), push(offset), op.MSTORE,
               push(offset), op.MLOAD) + return_top()
    assert run_and_get_int(code) == value


def test_environment_opcodes() -> None:
    block = BlockContext(number=1234, timestamp=1_699_999_999, chain_id=1,
                         gas_limit=30_000_000, base_fee=55)
    assert run_and_get_int(asm(op.NUMBER) + return_top(), block=block) == 1234
    assert run_and_get_int(asm(op.TIMESTAMP) + return_top(),
                           block=block) == 1_699_999_999
    assert run_and_get_int(asm(op.CHAINID) + return_top(), block=block) == 1
    assert run_and_get_int(asm(op.GASLIMIT) + return_top(),
                           block=block) == 30_000_000
    assert run_and_get_int(asm(op.BASEFEE) + return_top(), block=block) == 55
    assert run_and_get_int(asm(op.CALLER) + return_top()) == int.from_bytes(
        SENDER, "big")
    assert run_and_get_int(asm(op.ORIGIN) + return_top()) == int.from_bytes(
        SENDER, "big")
    assert run_and_get_int(asm(op.ADDRESS) + return_top()) == int.from_bytes(
        CONTRACT, "big")


def test_blockhash_window() -> None:
    block = BlockContext(number=1000)
    recent = run_and_get_int(asm(push(999, 2), op.BLOCKHASH) + return_top(),
                             block=block)
    assert recent != 0
    too_old = run_and_get_int(asm(push(1), op.BLOCKHASH) + return_top(),
                              block=block)
    assert too_old == 0
    future = run_and_get_int(asm(push(1000, 2), op.BLOCKHASH) + return_top(),
                             block=block)
    assert future == 0


def test_callvalue_and_selfbalance() -> None:
    result = run_code(asm(op.CALLVALUE) + return_top(), value=123)
    assert int.from_bytes(result.output, "big") == 123
    result = run_code(asm(op.SELFBALANCE) + return_top(), value=123)
    assert int.from_bytes(result.output, "big") == 123  # value transferred in


def test_dup2_duplicates_second_item() -> None:
    assert run_and_get_int(asm(push(5), push(9), op.DUP1 + 1, op.ADD, op.ADD)
                           + return_top()) == 19


def test_swap_sub_order() -> None:
    from repro.utils.hexutil import WORD_MASK
    value = run_and_get_int(asm(push(5), push(9), op.SWAP1, op.SUB) + return_top())
    assert value == (5 - 9) & WORD_MASK


def test_instruction_budget_guards_infinite_loops() -> None:
    # JUMPDEST; PUSH1 0; JUMP → infinite loop
    code = asm(op.JUMPDEST, push(0), op.JUMP)
    result = run_code(code)
    assert not result.success
    assert "ExecutionTimeout" in (result.error or "")


def test_out_of_gas() -> None:
    code = asm(op.JUMPDEST, push(0), op.JUMP)
    result = run_code(code, gas=100)
    assert not result.success
    assert "OutOfGas" in (result.error or "")
