"""Gas accounting: base costs, memory expansion, EXP byte cost, 63/64."""

from __future__ import annotations

from repro.evm import opcodes as op
from repro.evm.state import MemoryState

from tests.evm.helpers import asm, push, run_code


def _gas_used(code: bytes, gas: int = 1_000_000) -> int:
    result = run_code(code, gas=gas)
    assert result.success, result.error
    return result.gas_used


def test_simple_sequence_cost() -> None:
    # PUSH1(3) + PUSH1(3) + ADD(3) + STOP(0) = 9.
    assert _gas_used(asm(push(1), push(2), op.ADD, op.STOP)) == 9


def test_memory_expansion_is_charged() -> None:
    small = _gas_used(asm(push(1), push(0), op.MSTORE, op.STOP))
    large = _gas_used(asm(push(1), push(10_000, 2), op.MSTORE, op.STOP))
    assert large > small
    # Quadratic term: going 10x further costs more than 10x the words delta.
    huge = _gas_used(asm(push(1), push(100_000, 3), op.MSTORE, op.STOP))
    assert (huge - small) > 10 * (large - small) * 0.5


def test_memory_expansion_never_recharged() -> None:
    once = _gas_used(asm(push(1), push(960), op.MSTORE, op.STOP))
    twice = _gas_used(asm(push(1), push(960), op.MSTORE,
                          push(2), push(960), op.MSTORE, op.STOP))
    # The second MSTORE to the same region only pays the base 3 + pushes.
    assert twice - once == 3 + 3 + 3


def test_exp_charges_per_exponent_byte() -> None:
    # EXP pops (base, exponent) with base on top; the byte charge follows
    # the exponent's width.
    small_exp = _gas_used(asm(push(2), push(2), op.EXP, op.POP, op.STOP))
    big_exp = _gas_used(asm(push(2 ** 200, 26), push(2), op.EXP,
                            op.POP, op.STOP))
    assert big_exp > small_exp + 50 * 20


def test_out_of_gas_consumes_everything() -> None:
    code = asm(op.JUMPDEST, push(0), op.JUMP)
    result = run_code(code, gas=500)
    assert not result.success
    assert result.gas_used == 500


def test_sub_call_gets_63_64ths() -> None:
    """A recursive self-call chain bottoms out by gas decay, and unused gas
    is refunded to the caller frame."""
    callee = b"\xca" * 20
    state = MemoryState()
    state.set_code(callee, asm(op.STOP))
    # CALL with a huge gas request: forwarded amount is capped at 63/64.
    code = asm(push(0), push(0), push(0), push(0), push(0),
               bytes([op.PUSH0 + 20]) + callee,
               push(10 ** 9, 4), op.SWAP1, op.POP,  # keep stack order: gas last
               op.GAS, op.CALL, op.POP, op.STOP)
    result = run_code(code, state=state, gas=100_000)
    assert result.success
    # Far less than the full 100k was burned: the sub-call used ~nothing
    # and refunded its allowance.
    assert result.gas_used < 5_000


def test_gas_opcode_reports_remaining() -> None:
    from tests.evm.helpers import run_and_get_int
    remaining = run_and_get_int(asm(op.GAS) + asm(push(0), op.MSTORE,
                                                  push(32), push(0),
                                                  op.RETURN), gas=50_000)
    assert 0 < remaining < 50_000


def test_sstore_flat_cost_charged() -> None:
    write = _gas_used(asm(push(1), push(0), op.SSTORE, op.STOP))
    assert write >= 100  # flat SSTORE cost in our model
