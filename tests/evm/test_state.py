"""MemoryState / OverlayState semantics, snapshot-revert properties."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.evm.state import MemoryState, OverlayState, transfer_value

ADDR_A = b"\x01" * 20
ADDR_B = b"\x02" * 20


def test_memory_state_defaults() -> None:
    state = MemoryState()
    assert state.get_code(ADDR_A) == b""
    assert state.get_storage(ADDR_A, 0) == 0
    assert state.get_balance(ADDR_A) == 0
    assert state.get_nonce(ADDR_A) == 0
    assert not state.account_exists(ADDR_A)


def test_memory_state_zero_storage_is_pruned() -> None:
    state = MemoryState()
    state.set_storage(ADDR_A, 1, 7)
    state.set_storage(ADDR_A, 1, 0)
    assert state.get_storage(ADDR_A, 1) == 0


def test_memory_state_snapshot_revert() -> None:
    state = MemoryState()
    state.set_storage(ADDR_A, 0, 1)
    snapshot = state.snapshot()
    state.set_storage(ADDR_A, 0, 2)
    state.set_code(ADDR_B, b"\x60")
    state.revert(snapshot)
    assert state.get_storage(ADDR_A, 0) == 1
    assert state.get_code(ADDR_B) == b""


def test_mark_destroyed_clears_code() -> None:
    state = MemoryState()
    state.set_code(ADDR_A, b"\x60\x00")
    state.mark_destroyed(ADDR_A)
    assert state.get_code(ADDR_A) == b""


def test_overlay_reads_fall_through() -> None:
    base = MemoryState()
    base.set_code(ADDR_A, b"\x01")
    base.set_storage(ADDR_A, 5, 55)
    base.set_balance(ADDR_A, 10)
    overlay = OverlayState(base)
    assert overlay.get_code(ADDR_A) == b"\x01"
    assert overlay.get_storage(ADDR_A, 5) == 55
    assert overlay.get_balance(ADDR_A) == 10


def test_overlay_writes_do_not_touch_base() -> None:
    base = MemoryState()
    base.set_storage(ADDR_A, 5, 55)
    overlay = OverlayState(base)
    overlay.set_storage(ADDR_A, 5, 99)
    overlay.set_code(ADDR_B, b"\x02")
    overlay.set_balance(ADDR_A, 1)
    assert base.get_storage(ADDR_A, 5) == 55
    assert base.get_code(ADDR_B) == b""
    assert base.get_balance(ADDR_A) == 0
    assert overlay.get_storage(ADDR_A, 5) == 99


def test_overlay_snapshot_revert() -> None:
    base = MemoryState()
    overlay = OverlayState(base)
    overlay.set_storage(ADDR_A, 1, 1)
    snapshot = overlay.snapshot()
    overlay.set_storage(ADDR_A, 1, 2)
    overlay.revert(snapshot)
    assert overlay.get_storage(ADDR_A, 1) == 1


def test_overlay_destroy_shadows_base_code() -> None:
    base = MemoryState()
    base.set_code(ADDR_A, b"\x01")
    base.set_storage(ADDR_A, 0, 9)
    overlay = OverlayState(base)
    overlay.mark_destroyed(ADDR_A)
    assert overlay.get_code(ADDR_A) == b""
    assert base.get_code(ADDR_A) == b"\x01"


def test_transfer_value() -> None:
    state = MemoryState()
    state.set_balance(ADDR_A, 100)
    assert transfer_value(state, ADDR_A, ADDR_B, 40)
    assert state.get_balance(ADDR_A) == 60
    assert state.get_balance(ADDR_B) == 40


def test_transfer_insufficient() -> None:
    state = MemoryState()
    assert not transfer_value(state, ADDR_A, ADDR_B, 1)
    assert state.get_balance(ADDR_B) == 0


def test_transfer_zero_always_succeeds() -> None:
    state = MemoryState()
    assert transfer_value(state, ADDR_A, ADDR_B, 0)


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 2 ** 64)),
                max_size=20))
def test_overlay_matches_direct_writes(writes: list[tuple[int, int]]) -> None:
    """An overlay applied over empty base behaves like a plain state."""
    direct = MemoryState()
    overlay = OverlayState(MemoryState())
    for slot, value in writes:
        direct.set_storage(ADDR_A, slot, value)
        overlay.set_storage(ADDR_A, slot, value)
    for slot in range(8):
        assert direct.get_storage(ADDR_A, slot) == overlay.get_storage(ADDR_A, slot)


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 2 ** 64)),
                min_size=1, max_size=20),
       st.integers(min_value=0, max_value=19))
def test_snapshot_revert_is_exact(writes: list[tuple[int, int]],
                                  cut: int) -> None:
    """Reverting to a snapshot erases exactly the writes after it."""
    cut = min(cut, len(writes))
    state = MemoryState()
    for slot, value in writes[:cut]:
        state.set_storage(ADDR_A, slot, value)
    snapshot = state.snapshot()
    expected = {slot: state.get_storage(ADDR_A, slot) for slot in range(8)}
    for slot, value in writes[cut:]:
        state.set_storage(ADDR_A, slot, value)
    state.revert(snapshot)
    for slot in range(8):
        assert state.get_storage(ADDR_A, slot) == expected[slot]
