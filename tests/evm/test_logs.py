"""LOG opcodes, event tracing, receipt logs."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.evm import opcodes as op
from repro.evm.state import MemoryState
from repro.evm.tracer import CallTracer
from repro.lang import compile_contract, stdlib
from repro.utils import encode_call
from repro.utils.keccak import keccak256

from tests.conftest import ALICE, BOB
from tests.evm.helpers import CONTRACT, asm, push, run_code


def test_log1_event_traced() -> None:
    tracer = CallTracer()
    # mem[0:32] = 7; LOG1(0, 32, topic=0xabc)
    code = asm(push(7), push(0), op.MSTORE,
               push(0xABC, 2), push(32), push(0), op.LOG0 + 1, op.STOP)
    result = run_code(code, tracer=tracer)
    assert result.success
    assert len(tracer.logs) == 1
    event = tracer.logs[0]
    assert event.emitter == CONTRACT
    assert event.topics == (0xABC,)
    assert int.from_bytes(event.data, "big") == 7


def test_log0_and_log4_topic_counts() -> None:
    tracer = CallTracer()
    code = asm(push(0), push(0), op.LOG0,
               push(4), push(3), push(2), push(1),
               push(0), push(0), op.LOG0 + 4, op.STOP)
    assert run_code(code, tracer=tracer).success
    assert tracer.logs[0].topics == ()
    assert tracer.logs[1].topics == (1, 2, 3, 4)


def test_log_inside_staticcall_fails() -> None:
    state = MemoryState()
    logger = b"\x10" * 20
    state.set_code(logger, asm(push(0), push(0), op.LOG0, op.STOP))
    code = asm(push(0), push(0), push(0), push(0),
               bytes([op.PUSH0 + 20]) + logger, op.GAS, op.STATICCALL)
    code += asm(push(0), op.MSTORE, push(32), push(0), op.RETURN)
    result = run_code(code, state=state)
    assert result.success
    assert int.from_bytes(result.output, "big") == 0  # inner call failed


def test_token_transfer_emits_event(chain: Blockchain) -> None:
    token = chain.deploy(
        ALICE, compile_contract(stdlib.simple_token("T", ALICE)).init_code
    ).created_address
    receipt = chain.transact(
        ALICE, token, encode_call("transfer(address,uint256)", [BOB, 123]))
    assert receipt.success
    assert len(receipt.logs) == 1
    event = receipt.logs[0]
    assert event.emitter == token
    expected_topic = int.from_bytes(
        keccak256(b"Transfer(address,address,uint256)"), "big")
    assert event.topics == (expected_topic,)
    sender_word = int.from_bytes(event.data[0:32], "big")
    recipient_word = int.from_bytes(event.data[32:64], "big")
    amount = int.from_bytes(event.data[64:96], "big")
    assert sender_word == int.from_bytes(ALICE, "big")
    assert recipient_word == int.from_bytes(BOB, "big")
    assert amount == 123


def test_failed_transaction_drops_logs(chain: Blockchain) -> None:
    token = chain.deploy(
        ALICE, compile_contract(stdlib.simple_token("T", ALICE)).init_code
    ).created_address
    receipt = chain.transact(
        BOB, token, encode_call("transfer(address,uint256)", [ALICE, 10 ** 30]))
    assert not receipt.success
    assert receipt.logs == []


def test_delegatecall_logs_attribute_to_proxy(chain: Blockchain) -> None:
    """Events emitted by logic code run under a proxy carry the proxy's
    address — the behaviour indexers rely on."""
    token_ast = stdlib.simple_token("T", ALICE)
    token = chain.deploy(
        ALICE, compile_contract(token_ast).init_code).created_address
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.audius_proxy("P", token, ALICE)).init_code
    ).created_address
    # Give the proxy's storage a balance for ALICE (slot layout matches the
    # token's mapping addressing because delegatecall uses proxy storage).
    from repro.lang.storage_layout import mapping_element_slot
    from repro.utils.hexutil import address_to_word
    chain.state.set_storage(
        proxy, mapping_element_slot(address_to_word(ALICE), 1), 1000)
    receipt = chain.transact(
        ALICE, proxy, encode_call("transfer(address,uint256)", [BOB, 5]))
    assert receipt.success
    assert receipt.logs
    assert receipt.logs[0].emitter == proxy
