"""Disassembler: linear sweep, immediates, jumpdests, the §4.1 prefilter."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.evm import opcodes as op
from repro.evm.disassembler import contains_delegatecall, disassemble
from repro.lang import stdlib


def test_simple_sequence() -> None:
    code = bytes([op.PUSH1, 0x80, op.PUSH1, 0x40, op.MSTORE, op.STOP])
    listing = disassemble(code)
    mnemonics = [inst.opcode.mnemonic for inst in listing]
    assert mnemonics == ["PUSH1", "PUSH1", "MSTORE", "STOP"]
    assert listing.instructions[0].operand == b"\x80"
    assert listing.instructions[0].offset == 0
    assert listing.instructions[1].offset == 2


def test_push32_immediate() -> None:
    operand = bytes(range(32))
    listing = disassemble(bytes([op.PUSH32]) + operand)
    assert listing.instructions[0].operand == operand
    assert listing.instructions[0].size == 33


def test_truncated_push_immediate() -> None:
    listing = disassemble(bytes([op.PUSH4, 0xAA]))
    assert listing.instructions[0].operand == b"\xaa"


def test_invalid_bytes_recorded() -> None:
    listing = disassemble(bytes([0x2F, op.STOP, 0x2E]))
    assert [invalid.value for invalid in listing.invalid_bytes] == [0x2F, 0x2E]
    assert len(listing.instructions) == 1


def test_jumpdests_exclude_push_immediates() -> None:
    # JUMPDEST at 0; PUSH1 0x5b (immediate 0x5b at offset 2 is NOT a dest).
    code = bytes([op.JUMPDEST, op.PUSH1, 0x5B, op.JUMPDEST])
    listing = disassemble(code)
    assert listing.jumpdests == {0, 3}


def test_delegatecall_at_boundary_detected() -> None:
    assert contains_delegatecall(bytes([op.DELEGATECALL]))


def test_delegatecall_inside_immediate_not_detected() -> None:
    """The 0xf4 byte hidden in a PUSH immediate must not count (§4.1)."""
    code = bytes([op.PUSH0 + 2, 0xF4, 0x00, op.STOP])
    assert not contains_delegatecall(code)


def test_no_delegatecall_byte_short_circuits() -> None:
    assert not contains_delegatecall(bytes([op.PUSH1, 0x01, op.STOP]))


def test_minimal_proxy_contains_delegatecall() -> None:
    runtime = stdlib.minimal_proxy_runtime(b"\x11" * 20)
    assert contains_delegatecall(runtime)


def test_push4_operand_harvest() -> None:
    code = bytes([op.PUSH4, 0xDE, 0xAD, 0xBE, 0xEF,
                  op.PUSH1, 0x00,
                  op.PUSH4, 0x11, 0x22, 0x33, 0x44])
    assert set(disassemble(code).push4_operands()) == {
        b"\xde\xad\xbe\xef", b"\x11\x22\x33\x44"}


def test_opcode_histogram() -> None:
    code = bytes([op.PUSH1, 1, op.PUSH1, 2, op.ADD, op.STOP])
    histogram = disassemble(code).opcode_histogram
    assert histogram["PUSH1"] == 2
    assert histogram["ADD"] == 1


def test_at_lookup() -> None:
    code = bytes([op.PUSH1, 1, op.STOP])
    listing = disassemble(code)
    assert listing.at(0).opcode.mnemonic == "PUSH1"
    assert listing.at(1) is None  # inside the immediate
    assert listing.at(2).opcode.mnemonic == "STOP"


def test_text_listing() -> None:
    code = bytes([op.PUSH4, 0xDF, 0x4A, 0x31, 0x06, op.STOP])
    text = disassemble(code).text()
    assert "PUSH4 0xdf4a3106" in text
    assert "STOP" in text


@given(st.binary(max_size=300))
def test_sweep_covers_every_byte_exactly_once(code: bytes) -> None:
    """Instructions + invalid bytes partition the bytecode."""
    listing = disassemble(code)
    covered: list[tuple[int, int]] = []
    for instruction in listing.instructions:
        covered.append((instruction.offset, instruction.offset + instruction.size))
    for invalid in listing.invalid_bytes:
        covered.append((invalid.offset, invalid.offset + 1))
    covered.sort()
    position = 0
    for start, end in covered:
        assert start == position
        position = end
    # The final instruction may extend past the code end only via a
    # truncated PUSH immediate.
    assert position >= len(code)


@given(st.binary(max_size=300))
def test_jumpdests_agree_with_interpreter_scan(code: bytes) -> None:
    from repro.evm.interpreter import _scan_jumpdests
    assert disassemble(code).jumpdests == _scan_jumpdests(code)


@given(st.binary(max_size=200))
def test_prefilter_never_false_negative(code: bytes) -> None:
    """If the sweep finds a DELEGATECALL instruction, the prefilter must."""
    listing = disassemble(code)
    has = any(inst.opcode.value == op.DELEGATECALL for inst in listing)
    assert contains_delegatecall(code) == has
