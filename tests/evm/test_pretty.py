"""The Listing-3-style annotated disassembly."""

from __future__ import annotations

from repro.evm.pretty import annotate
from repro.lang import compile_contract, stdlib

from tests.conftest import ALICE


def test_honeypot_listing_matches_paper_shape() -> None:
    compiled = compile_contract(stdlib.honeypot_proxy("HP", b"\x01" * 20, ALICE))
    names = {selector: prototype
             for selector, prototype in compiled.selector_table.items()}
    text = annotate(compiled.runtime_code, names)
    assert "PUSH4 0xdf4a3106" in text
    assert "selector of impl_LUsXCWD2AKCc()" in text
    assert "impl_LUsXCWD2AKCc():" in text
    assert "DELEGATECALL — the proxy forwarding site" in text


def test_unnamed_selectors_annotated_by_hex() -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    text = annotate(compiled.runtime_code)
    assert "dispatcher selector 0x" in text


def test_every_offset_appears_in_order() -> None:
    compiled = compile_contract(stdlib.simple_token("T", ALICE))
    text = annotate(compiled.runtime_code)
    offsets = [int(line[:4], 16) for line in text.splitlines()]
    assert offsets == sorted(offsets)
    assert offsets[0] == 0


def test_metadata_marked_as_data() -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    text = annotate(compiled.runtime_code)
    assert "<data/metadata>" in text


def test_cli_disasm(capsys) -> None:
    from repro.cli import main
    runtime = stdlib.minimal_proxy_runtime(b"\x11" * 20)
    assert main(["disasm", "0x" + runtime.hex()]) == 0
    output = capsys.readouterr().out
    assert "DELEGATECALL" in output
    assert "CALLDATACOPY" in output
