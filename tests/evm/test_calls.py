"""CALL-family semantics: context inheritance, value, static protection,
return-data plumbing, depth limits."""

from __future__ import annotations

from repro.evm import opcodes as op
from repro.evm.state import MemoryState
from repro.evm.tracer import CallTracer, StorageTracer

from tests.evm.helpers import CONTRACT, SENDER, asm, push, return_top, run_code

CALLEE = b"\xca" * 20


def _install(state: MemoryState, address: bytes, code: bytes) -> None:
    state.set_code(address, code)


def _call_code(kind: int, target: bytes, out_size: int = 32,
               value: int = 0, in_size: int = 0) -> bytes:
    """Assemble a <kind> call to ``target`` then return mem[0:32]."""
    parts = [push(out_size), push(0), push(in_size), push(0)]
    if kind in (op.CALL, op.CALLCODE):
        parts.append(push(value, 32) if value else push(0))
    parts += [bytes([op.PUSH0 + 20]) + target, op.GAS, kind, op.POP,
              push(32), push(0), op.RETURN]
    return asm(*parts)


# Callee that returns its storage slot 0.
RETURN_SLOT0 = asm(push(0), op.SLOAD) + return_top()
# Callee that returns CALLER.
RETURN_CALLER = asm(op.CALLER) + return_top()
# Callee that writes 7 into its storage slot 5.
WRITE_SLOT5 = asm(push(7), push(5), op.SSTORE, op.STOP)
# Callee that returns CALLVALUE.
RETURN_CALLVALUE = asm(op.CALLVALUE) + return_top()


def test_call_reads_callee_storage() -> None:
    state = MemoryState()
    _install(state, CALLEE, RETURN_SLOT0)
    state.set_storage(CALLEE, 0, 42)
    state.set_storage(CONTRACT, 0, 99)
    result = run_code(_call_code(op.CALL, CALLEE), state=state)
    assert result.success
    assert int.from_bytes(result.output, "big") == 42


def test_delegatecall_reads_caller_storage() -> None:
    """The property the entire proxy pattern rests on (§2.2)."""
    state = MemoryState()
    _install(state, CALLEE, RETURN_SLOT0)
    state.set_storage(CALLEE, 0, 42)
    state.set_storage(CONTRACT, 0, 99)
    result = run_code(_call_code(op.DELEGATECALL, CALLEE), state=state)
    assert result.success
    assert int.from_bytes(result.output, "big") == 99


def test_delegatecall_preserves_msg_sender() -> None:
    state = MemoryState()
    _install(state, CALLEE, RETURN_CALLER)
    result = run_code(_call_code(op.DELEGATECALL, CALLEE), state=state)
    assert result.output[-20:] == SENDER


def test_call_sender_is_calling_contract() -> None:
    state = MemoryState()
    _install(state, CALLEE, RETURN_CALLER)
    result = run_code(_call_code(op.CALL, CALLEE), state=state)
    assert result.output[-20:] == CONTRACT


def test_delegatecall_writes_go_to_caller() -> None:
    state = MemoryState()
    _install(state, CALLEE, WRITE_SLOT5)
    result = run_code(_call_code(op.DELEGATECALL, CALLEE, out_size=0),
                      state=state)
    assert result.success
    assert state.get_storage(CONTRACT, 5) == 7
    assert state.get_storage(CALLEE, 5) == 0


def test_callcode_writes_to_caller_but_sender_is_caller_contract() -> None:
    state = MemoryState()
    _install(state, CALLEE, WRITE_SLOT5)
    result = run_code(_call_code(op.CALLCODE, CALLEE, out_size=0), state=state)
    assert result.success
    assert state.get_storage(CONTRACT, 5) == 7
    state2 = MemoryState()
    _install(state2, CALLEE, RETURN_CALLER)
    result = run_code(_call_code(op.CALLCODE, CALLEE), state=state2)
    assert result.output[-20:] == CONTRACT


def test_staticcall_blocks_writes() -> None:
    state = MemoryState()
    _install(state, CALLEE, WRITE_SLOT5)
    result = run_code(_call_code(op.STATICCALL, CALLEE, out_size=0),
                      state=state)
    # outer succeeds (push 0 success flag popped), inner failed:
    assert state.get_storage(CONTRACT, 5) == 0
    assert state.get_storage(CALLEE, 5) == 0
    assert result.success


def test_call_transfers_value() -> None:
    state = MemoryState()
    _install(state, CALLEE, RETURN_CALLVALUE)
    state.set_balance(CONTRACT, 1000)
    result = run_code(_call_code(op.CALL, CALLEE, value=300), state=state)
    assert int.from_bytes(result.output, "big") == 300
    assert state.get_balance(CALLEE) == 300
    assert state.get_balance(CONTRACT) == 700


def test_call_insufficient_balance_fails_sub_call_only() -> None:
    state = MemoryState()
    _install(state, CALLEE, RETURN_CALLVALUE)
    tracer = CallTracer()
    result = run_code(_call_code(op.CALL, CALLEE, value=300), state=state,
                      tracer=tracer)
    assert result.success  # outer frame survives; success flag was 0
    assert state.get_balance(CALLEE) == 0


def test_delegatecall_inherits_callvalue() -> None:
    state = MemoryState()
    _install(state, CALLEE, RETURN_CALLVALUE)
    result = run_code(_call_code(op.DELEGATECALL, CALLEE), state=state,
                      value=55)
    assert int.from_bytes(result.output, "big") == 55


def test_returndatasize_and_copy() -> None:
    state = MemoryState()
    _install(state, CALLEE, asm(push(0x1234, 2)) + return_top())
    code = asm(push(0), push(0), push(0), push(0), push(0),
               bytes([op.PUSH0 + 20]) + CALLEE, op.GAS, op.CALL, op.POP,
               op.RETURNDATASIZE) + return_top()
    result = run_code(code, state=state)
    assert int.from_bytes(result.output, "big") == 32


def test_returndatacopy_out_of_bounds_fails() -> None:
    state = MemoryState()
    _install(state, CALLEE, asm(op.STOP))
    code = asm(push(0), push(0), push(0), push(0), push(0),
               bytes([op.PUSH0 + 20]) + CALLEE, op.GAS, op.CALL, op.POP,
               push(32), push(0), push(0), op.RETURNDATACOPY, op.STOP)
    result = run_code(code, state=state)
    assert not result.success


def test_failed_subcall_reverts_its_writes_only() -> None:
    state = MemoryState()
    # Callee writes then reverts.
    _install(state, CALLEE, asm(push(7), push(5), op.SSTORE,
                                push(0), push(0), op.REVERT))
    code = asm(push(9), push(1), op.SSTORE) + _call_code(op.CALL, CALLEE,
                                                         out_size=0)
    result = run_code(code, state=state)
    assert result.success
    assert state.get_storage(CONTRACT, 1) == 9   # outer write survives
    assert state.get_storage(CALLEE, 5) == 0     # inner write rolled back


def test_call_to_empty_account_succeeds() -> None:
    result = run_code(_call_code(op.CALL, b"\x77" * 20))
    assert result.success


def test_call_depth_limit() -> None:
    # Self-recursive contract: CALL(self) forever.
    code = asm(push(0), push(0), push(0), push(0), push(0),
               bytes([op.PUSH0 + 20]) + CONTRACT, op.GAS, op.CALL, op.POP,
               op.STOP)
    state = MemoryState()
    result = run_code(code, state=state, gas=10 ** 9)
    # Gas 63/64 rule or depth limit terminates it; the top frame succeeds.
    assert result.success


def test_call_events_traced() -> None:
    state = MemoryState()
    _install(state, CALLEE, asm(op.STOP))
    tracer = CallTracer()
    calldata = b"\xde\xad\xbe\xef"
    # Forward the incoming calldata verbatim (proxy idiom).
    code = asm(op.CALLDATASIZE, push(0), push(0), op.CALLDATACOPY,
               push(0), push(0), op.CALLDATASIZE, push(0),
               bytes([op.PUSH0 + 20]) + CALLEE, op.GAS, op.DELEGATECALL,
               op.STOP)
    result = run_code(code, calldata=calldata, state=state, tracer=tracer)
    assert result.success
    events = tracer.delegatecalls()
    assert len(events) == 1
    assert events[0].target == CALLEE
    assert events[0].input_data == calldata
    assert events[0].forwards_full_calldata


def test_storage_events_traced() -> None:
    state = MemoryState()
    tracer = StorageTracer()
    code = asm(push(3), push(1), op.SSTORE, push(1), op.SLOAD, op.POP, op.STOP)
    run_code(code, state=state, tracer=tracer)
    kinds = [(event.kind, event.slot, event.value) for event in tracer.events]
    assert ("SSTORE", 1, 3) in kinds
    assert ("SLOAD", 1, 3) in kinds
