"""CREATE/CREATE2: address derivation, init-code semantics, failure modes."""

from __future__ import annotations

from repro.evm import opcodes as op
from repro.evm.environment import ExecutionConfig
from repro.evm.interpreter import EVM, Message
from repro.evm.state import MemoryState
from repro.evm.tracer import CallTracer
from repro.utils import rlp
from repro.utils.keccak import keccak256

from tests.evm.helpers import CONTRACT, SENDER, asm, push, run_code

# Init code that returns the 2-byte runtime [STOP, STOP]:
# PUSH2 0x0000 PUSH1 0 MSTORE ... simpler: CODECOPY trailing runtime.
INIT_RETURNS_STOP = asm(
    push(2), push(12), push(0), op.CODECOPY,   # mem[0:2] = code[12:14]
    push(2), push(0), op.RETURN,
    op.STOP,  # padding so runtime starts at offset 12
) + b"\x00\x00"


def _normalize_init() -> bytes:
    # Recompute offsets robustly: copy the last 2 bytes of the init code.
    body = asm(push(2), push(0, 2), push(0), op.CODECOPY,
               push(2), push(0), op.RETURN)
    runtime_offset = len(body)
    body = asm(push(2), push(runtime_offset, 2), push(0), op.CODECOPY,
               push(2), push(0), op.RETURN)
    return body + bytes([op.JUMPDEST, op.STOP])


INIT = _normalize_init()


def test_top_level_create_address_derivation() -> None:
    state = MemoryState()
    state.set_nonce(SENDER, 3)
    evm = EVM(state)
    result = evm.execute(Message(sender=SENDER, to=None, data=INIT))
    assert result.success
    expected = keccak256(rlp.encode_list([
        rlp.encode_bytes(SENDER), rlp.encode_int(3)]))[12:]
    assert result.created_address == expected
    assert state.get_code(expected) == bytes([op.JUMPDEST, op.STOP])
    assert state.get_nonce(SENDER) == 4


def test_create_opcode_from_contract() -> None:
    state = MemoryState()
    tracer = CallTracer()
    # Store INIT in memory via CODECOPY of our own trailing bytes, then CREATE.
    creator_body = asm(
        push(len(INIT)), push(0, 2), push(0), op.CODECOPY,
        push(len(INIT)), push(0), push(0), op.CREATE,
        push(0), op.MSTORE, push(32), push(0), op.RETURN)
    offset = len(creator_body)
    creator = asm(
        push(len(INIT)), push(offset, 2), push(0), op.CODECOPY,
        push(len(INIT)), push(0), push(0), op.CREATE,
        push(0), op.MSTORE, push(32), push(0), op.RETURN) + INIT
    result = run_code(creator, state=state, tracer=tracer)
    assert result.success
    created = result.output[-20:]
    assert state.get_code(created) == bytes([op.JUMPDEST, op.STOP])
    assert len(tracer.creates) == 1
    assert tracer.creates[0].kind == "CREATE"
    assert tracer.creates[0].new_address == created


def test_create2_address_derivation() -> None:
    state = MemoryState()
    salt = 0xDEAD
    creator_body = asm(
        push(len(INIT)), push(0, 2), push(0), op.CODECOPY,
        push(salt, 2), push(len(INIT)), push(0), push(0), op.CREATE2,
        push(0), op.MSTORE, push(32), push(0), op.RETURN)
    offset = len(creator_body)
    creator = asm(
        push(len(INIT)), push(offset, 2), push(0), op.CODECOPY,
        push(salt, 2), push(len(INIT)), push(0), push(0), op.CREATE2,
        push(0), op.MSTORE, push(32), push(0), op.RETURN) + INIT
    result = run_code(creator, state=state)
    assert result.success
    created = result.output[-20:]
    expected = keccak256(
        b"\xff" + CONTRACT + salt.to_bytes(32, "big") + keccak256(INIT))[12:]
    assert created == expected


def test_create_with_fixed_address_config() -> None:
    """§4.2: emulation parks created contracts at a sentinel address."""
    sentinel = b"\x0c" * 20
    state = MemoryState()
    evm = EVM(state, config=ExecutionConfig(fixed_create_address=sentinel))
    result = evm.execute(Message(sender=SENDER, to=None, data=INIT))
    assert result.success
    assert result.created_address == sentinel
    assert state.get_code(sentinel) == bytes([op.JUMPDEST, op.STOP])


def test_reverting_init_code_fails_create() -> None:
    state = MemoryState()
    evm = EVM(state)
    result = evm.execute(Message(
        sender=SENDER, to=None, data=asm(push(0), push(0), op.REVERT)))
    assert not result.success
    assert result.error == "revert"


def test_create_code_size_limit() -> None:
    # Init code returning 25,000 zero bytes exceeds EIP-170.
    oversize = asm(push(25_000, 2), push(0), op.RETURN)
    state = MemoryState()
    evm = EVM(state)
    result = evm.execute(Message(sender=SENDER, to=None, data=oversize))
    assert not result.success
    assert "EIP-170" in (result.error or "")


def test_create_value_transfer() -> None:
    state = MemoryState()
    state.set_balance(SENDER, 1000)
    evm = EVM(state)
    result = evm.execute(Message(sender=SENDER, to=None, data=INIT, value=400))
    assert result.success
    assert state.get_balance(result.created_address) == 400
    assert state.get_balance(SENDER) == 600


def test_create_insufficient_balance() -> None:
    state = MemoryState()
    evm = EVM(state)
    result = evm.execute(Message(sender=SENDER, to=None, data=INIT, value=1))
    assert not result.success


def test_address_collision_rejected() -> None:
    state = MemoryState()
    state.set_nonce(SENDER, 0)
    expected = keccak256(rlp.encode_list([
        rlp.encode_bytes(SENDER), rlp.encode_int(0)]))[12:]
    state.set_code(expected, b"\x00")
    evm = EVM(state)
    result = evm.execute(Message(sender=SENDER, to=None, data=INIT))
    assert not result.success
    assert "collision" in (result.error or "")
