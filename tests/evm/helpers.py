"""Helpers for executing hand-assembled bytecode in tests."""

from __future__ import annotations

from repro.evm import opcodes as op
from repro.evm.environment import BlockContext, ExecutionConfig, TransactionContext
from repro.evm.interpreter import EVM, CallResult, Message
from repro.evm.state import MemoryState
from repro.evm.tracer import Tracer

CONTRACT = b"\xc0" * 20
SENDER = b"\x5e" * 20


def asm(*parts: int | bytes) -> bytes:
    """Join opcode ints and immediate byte strings into bytecode."""
    blob = bytearray()
    for part in parts:
        if isinstance(part, int):
            blob.append(part)
        else:
            blob.extend(part)
    return bytes(blob)


def push(value: int, width: int | None = None) -> bytes:
    """A PUSH instruction for ``value`` (minimal or explicit width)."""
    if width is None:
        width = max(1, (value.bit_length() + 7) // 8)
    return bytes([op.PUSH0 + width]) + value.to_bytes(width, "big")


def return_top() -> bytes:
    """Store the stack top at memory 0 and return it (32 bytes)."""
    return asm(push(0), op.MSTORE, push(32), push(0), op.RETURN)


def run_code(code: bytes, calldata: bytes = b"",
             state: MemoryState | None = None,
             tracer: Tracer | None = None,
             value: int = 0,
             gas: int = 10_000_000,
             block: BlockContext | None = None) -> CallResult:
    """Deploy ``code`` at a fixed address and execute one message."""
    state = state or MemoryState()
    state.set_code(CONTRACT, code)
    if value:
        state.set_balance(SENDER, value)
    evm = EVM(state, block=block or BlockContext(number=100, timestamp=1_700_000_000),
              tx=TransactionContext(origin=SENDER),
              config=ExecutionConfig(), tracer=tracer)
    return evm.execute(Message(sender=SENDER, to=CONTRACT, value=value,
                               data=calldata, gas=gas))


def run_and_get_int(code: bytes, calldata: bytes = b"", **kwargs) -> int:
    """Run code expected to RETURN a 32-byte word; decode it."""
    result = run_code(code, calldata, **kwargs)
    assert result.success, result.error
    return int.from_bytes(result.output, "big")


def binop_code(opcode: int, a: int, b: int) -> bytes:
    """Compute ``a <op> b`` with EVM operand order (a on top) and return it."""
    return asm(push(b, 32), push(a, 32), opcode) + return_top()
