"""Precompiled contracts 0x01..0x04."""

from __future__ import annotations

import hashlib

from repro.evm import opcodes as op
from repro.evm.precompiles import is_precompile, run_precompile
from repro.evm.state import MemoryState

from tests.evm.helpers import asm, push, run_code

SHA256_ADDR = (2).to_bytes(20, "big")
IDENTITY_ADDR = (4).to_bytes(20, "big")


def test_precompile_addresses() -> None:
    assert is_precompile((1).to_bytes(20, "big"))
    assert is_precompile((4).to_bytes(20, "big"))
    assert not is_precompile((5).to_bytes(20, "big"))
    assert not is_precompile(b"\x00" * 20)


def test_sha256() -> None:
    assert run_precompile(SHA256_ADDR, b"abc") == hashlib.sha256(b"abc").digest()


def test_identity() -> None:
    assert run_precompile(IDENTITY_ADDR, b"hello") == b"hello"


def test_ripemd160_padded() -> None:
    output = run_precompile((3).to_bytes(20, "big"), b"abc")
    assert len(output) == 32
    assert output[:12] == b"\x00" * 12
    assert output[12:] == hashlib.new("ripemd160", b"abc").digest()


def test_ecrecover_stub_deterministic() -> None:
    ecrecover = (1).to_bytes(20, "big")
    first = run_precompile(ecrecover, b"\x01" * 128)
    second = run_precompile(ecrecover, b"\x01" * 128)
    other = run_precompile(ecrecover, b"\x02" * 128)
    assert first == second
    assert first != other
    assert len(first) == 32
    assert first[:12] == b"\x00" * 12  # address-shaped


def test_precompile_via_call_opcode() -> None:
    """A contract calling SHA-256 through CALL gets the digest."""
    word = int.from_bytes(b"abc".ljust(32, b"\x00"), "big")
    code = asm(
        push(word, 32), push(0), op.MSTORE,        # mem[0:3] = "abc"
        push(32), push(32),                        # out_size, out_offset
        push(3), push(0),                          # in_size, in_offset
        push(0),                                   # value
        bytes([op.PUSH0 + 20]) + SHA256_ADDR, op.GAS, op.CALL, op.POP,
        push(32), op.MLOAD,
        push(0), op.MSTORE, push(32), push(0), op.RETURN)
    result = run_code(code, state=MemoryState())
    assert result.success
    assert result.output == hashlib.sha256(b"abc").digest()
