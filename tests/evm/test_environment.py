"""BlockContext / TransactionContext / ExecutionConfig semantics."""

from __future__ import annotations

from repro.evm.environment import (
    MAINNET_CHAIN_ID,
    BlockContext,
    ExecutionConfig,
    TransactionContext,
)


def test_defaults_are_mainnet_plausible() -> None:
    block = BlockContext()
    assert block.chain_id == MAINNET_CHAIN_ID == 1
    assert block.gas_limit == 30_000_000
    assert block.base_fee > 0
    tx = TransactionContext()
    assert tx.gas_price > 0


def test_block_hash_window_semantics() -> None:
    block = BlockContext(number=500)
    assert block.block_hash(499) != 0
    assert block.block_hash(500 - 256) != 0
    assert block.block_hash(500 - 257) == 0
    assert block.block_hash(500) == 0      # current block: unavailable
    assert block.block_hash(501) == 0      # future: unavailable


def test_block_hash_deterministic_and_distinct() -> None:
    block = BlockContext(number=1000)
    assert block.block_hash(900) == block.block_hash(900)
    assert block.block_hash(900) != block.block_hash(901)


def test_execution_config_defaults() -> None:
    config = ExecutionConfig()
    assert config.instruction_budget == 2_000_000
    assert config.call_depth_limit == 1024
    assert config.fixed_create_address is None
    assert config.extra == {}


def test_execution_config_extras_independent() -> None:
    first = ExecutionConfig()
    second = ExecutionConfig()
    first.extra["x"] = 1
    assert second.extra == {}  # default_factory, not shared state
