"""Interpreter edge cases: selfdestruct, extcode*, origin propagation."""

from __future__ import annotations

from repro.evm import opcodes as op
from repro.evm.environment import TransactionContext
from repro.evm.interpreter import EVM, Message
from repro.evm.state import MemoryState
from repro.utils.keccak import keccak256

from tests.evm.helpers import CONTRACT, SENDER, asm, push, return_top, run_code

OTHER = b"\x0e" * 20


def test_selfdestruct_moves_balance_and_clears_code() -> None:
    state = MemoryState()
    state.set_balance(CONTRACT, 777)
    beneficiary = b"\xbe" * 20
    code = asm(bytes([op.PUSH0 + 20]) + beneficiary, op.SELFDESTRUCT)
    result = run_code(code, state=state)
    assert result.success
    assert state.get_balance(beneficiary) == 777
    assert state.get_balance(CONTRACT) == 0
    assert state.get_code(CONTRACT) == b""


def test_selfdestruct_to_self_burns_nothing_weird() -> None:
    state = MemoryState()
    state.set_balance(CONTRACT, 500)
    code = asm(bytes([op.PUSH0 + 20]) + CONTRACT, op.SELFDESTRUCT)
    assert run_code(code, state=state).success
    assert state.get_balance(CONTRACT) == 500  # sent to itself
    assert state.get_code(CONTRACT) == b""


def test_extcodesize_and_extcodecopy() -> None:
    state = MemoryState()
    state.set_code(OTHER, b"\x60\x01\x60\x02")
    size_code = asm(bytes([op.PUSH0 + 20]) + OTHER, op.EXTCODESIZE) + return_top()
    result = run_code(size_code, state=state)
    assert int.from_bytes(result.output, "big") == 4

    copy_code = asm(push(4), push(0), push(0),
                    bytes([op.PUSH0 + 20]) + OTHER, op.EXTCODECOPY,
                    push(0), op.MLOAD) + return_top()
    result = run_code(copy_code, state=state)
    assert result.output[:4] == b"\x60\x01\x60\x02"


def test_extcodehash_of_empty_is_zero() -> None:
    code = asm(bytes([op.PUSH0 + 20]) + OTHER, op.EXTCODEHASH) + return_top()
    assert int.from_bytes(run_code(code).output, "big") == 0


def test_extcodehash_of_contract() -> None:
    state = MemoryState()
    state.set_code(OTHER, b"\x00")
    code = asm(bytes([op.PUSH0 + 20]) + OTHER, op.EXTCODEHASH) + return_top()
    result = run_code(code, state=state)
    assert result.output == keccak256(b"\x00")


def test_origin_constant_across_nesting() -> None:
    """ORIGIN stays the EOA through a CALL chain; CALLER changes."""
    state = MemoryState()
    inner = b"\x11" * 20
    state.set_code(inner, asm(op.ORIGIN) + return_top())
    code = asm(push(32), push(0), push(0), push(0), push(0),
               bytes([op.PUSH0 + 20]) + inner, op.GAS, op.CALL, op.POP,
               push(0), op.MLOAD) + return_top()
    result = run_code(code, state=state)
    assert result.output[-20:] == SENDER


def test_balance_opcode() -> None:
    state = MemoryState()
    state.set_balance(OTHER, 424_242)
    code = asm(bytes([op.PUSH0 + 20]) + OTHER, op.BALANCE) + return_top()
    result = run_code(code, state=state)
    assert int.from_bytes(result.output, "big") == 424_242


def test_call_to_precompile_address_with_code_check() -> None:
    """Precompile dispatch wins even though the account has no code."""
    sha256_address = (2).to_bytes(20, "big")
    code = asm(
        push(7), push(0), op.MSTORE8,           # mem[0] = 7
        push(32), push(32), push(1), push(0), push(0),
        bytes([op.PUSH0 + 20]) + sha256_address, op.GAS, op.CALL, op.POP,
        push(32), op.MLOAD) + return_top()
    import hashlib
    result = run_code(code)
    assert result.output == hashlib.sha256(b"\x07").digest()


def test_message_with_explicit_code_address() -> None:
    """Direct delegate-style message: code from A, storage of B."""
    state = MemoryState()
    code_holder = b"\x21" * 20
    storage_holder = b"\x22" * 20
    state.set_code(code_holder, asm(push(0), op.SLOAD) + return_top())
    state.set_storage(storage_holder, 0, 99)
    evm = EVM(state, tx=TransactionContext(origin=SENDER))
    result = evm.execute(Message(
        sender=SENDER, to=storage_holder,
        code_address=code_holder, storage_address=storage_holder,
        data=b""))
    assert int.from_bytes(result.output, "big") == 99


def test_zero_size_return() -> None:
    result = run_code(asm(push(0), push(0), op.RETURN))
    assert result.success and result.output == b""


def test_push0_pushes_zero() -> None:
    code = asm(bytes([op.PUSH0])) + return_top()
    assert int.from_bytes(run_code(code).output, "big") == 0


def test_truncated_push_at_code_end_zero_pads() -> None:
    # PUSH4 with only 1 immediate byte available.
    result = run_code(bytes([op.PUSH4, 0xAA]))
    assert result.success  # pushes 0xAA (zero-extended) and falls off the end
