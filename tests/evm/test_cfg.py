"""CFG construction and dispatcher recovery."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.signature_extractor import dispatcher_selectors
from repro.evm import opcodes as op
from repro.evm.cfg import build_cfg, dispatcher_functions
from repro.evm.disassembler import disassemble
from repro.lang import compile_contract, stdlib

from tests.conftest import ALICE
from tests.evm.helpers import asm, push


def test_single_block() -> None:
    cfg = build_cfg(asm(push(1), push(2), op.ADD, op.STOP))
    assert len(cfg) == 1
    block = cfg.entry()
    assert block.start == 0
    assert block.successors == []
    assert block.terminator.opcode.value == op.STOP


def test_blocks_split_at_jumpdest_and_jumps() -> None:
    # PUSH1@0, JUMP@2, STOP@3 (dead), JUMPDEST@4, STOP@5.
    code = asm(push(4), op.JUMP, op.STOP, op.JUMPDEST, op.STOP)
    cfg = build_cfg(code)
    assert set(cfg.blocks) == {0, 3, 4}
    assert cfg.block_at(0).successors == [4]
    assert cfg.block_at(3).successors == []  # unreachable STOP island
    assert cfg.block_at(4).successors == []


def test_jumpi_has_two_successors() -> None:
    # PUSH1@0, PUSH2@2, JUMPI@5, STOP@6 (fallthrough), JUMPDEST@7 (target).
    code = asm(push(1), push(7, 2), op.JUMPI, op.STOP, op.JUMPDEST, op.STOP)
    cfg = build_cfg(code)
    entry = cfg.entry()
    assert sorted(entry.successors) == [6, 7]


def test_reachability() -> None:
    code = asm(push(4), op.JUMP, op.STOP, op.JUMPDEST, op.STOP)
    cfg = build_cfg(code)
    assert cfg.reachable_from(0) == {0, 4}  # the STOP island at 3 is dead


def test_dynamic_jump_has_no_static_edge() -> None:
    # Target comes from calldata: statically unknown.
    code = asm(push(0), op.CALLDATALOAD, op.JUMP, op.JUMPDEST, op.STOP)
    cfg = build_cfg(code)
    assert cfg.entry().successors == []


def test_compiled_wallet_dispatcher_blocks() -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE))
    cfg = build_cfg(compiled.runtime_code)
    assert len(cfg) > 5
    reachable = cfg.reachable_from(0)
    # Every dispatcher target is reachable.
    for entry in dispatcher_functions(compiled.runtime_code):
        assert entry.body_offset in reachable


def test_dispatcher_functions_match_declared() -> None:
    contract = stdlib.simple_token("T", ALICE)
    compiled = compile_contract(contract)
    entries = dispatcher_functions(compiled.runtime_code)
    assert {entry.selector for entry in entries} == set(
        compiled.selector_table)
    # Bodies are distinct JUMPDESTs.
    offsets = [entry.body_offset for entry in entries]
    assert len(set(offsets)) == len(offsets)
    listing = disassemble(compiled.runtime_code)
    for entry in entries:
        assert entry.body_offset in listing.jumpdests


def test_cfg_extraction_agrees_with_pattern_extractor() -> None:
    """Two independent implementations of §5.1 must agree on compiler
    output — the CFG walk and the sliding-window pattern scan."""
    for contract in (stdlib.simple_wallet("W", ALICE),
                     stdlib.simple_token("T", ALICE),
                     stdlib.honeypot_proxy("H", b"\x01" * 20, ALICE),
                     stdlib.diamond_proxy("D", ALICE)):
        compiled = compile_contract(contract)
        from_cfg = {entry.selector
                    for entry in dispatcher_functions(compiled.runtime_code)}
        from_pattern = dispatcher_selectors(compiled.runtime_code)
        assert from_cfg == from_pattern


def test_no_functions_no_dispatcher_entries() -> None:
    compiled = compile_contract(stdlib.audius_proxy("P", b"\x01" * 20, ALICE))
    assert dispatcher_functions(compiled.runtime_code) == []


@given(st.binary(max_size=300))
def test_cfg_total_and_consistent(code: bytes) -> None:
    """On arbitrary bytes: blocks partition the instructions; every edge
    points at an existing block."""
    cfg = build_cfg(code)
    listing = disassemble(code)
    covered = sorted(
        instruction.offset
        for block in cfg
        for instruction in block.instructions)
    assert covered == [instruction.offset for instruction in listing]
    for block in cfg:
        for successor in block.successors:
            assert successor in cfg.blocks
