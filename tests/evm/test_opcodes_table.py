"""Static opcode-table invariants."""

from __future__ import annotations

from repro.evm import opcodes as op


def test_push_family_immediates() -> None:
    assert op.OPCODES[op.PUSH0].immediate_size == 0
    for width in range(1, 33):
        opcode = op.OPCODES[op.PUSH0 + width]
        assert opcode.mnemonic == f"PUSH{width}"
        assert opcode.immediate_size == width
        assert opcode.is_push


def test_dup_swap_families() -> None:
    for depth in range(1, 17):
        dup = op.OPCODES[0x80 + depth - 1]
        swap = op.OPCODES[0x90 + depth - 1]
        assert dup.mnemonic == f"DUP{depth}" and dup.is_dup
        assert swap.mnemonic == f"SWAP{depth}" and swap.is_swap
        assert dup.stack_inputs == depth and dup.stack_outputs == depth + 1
        assert swap.stack_inputs == depth + 1


def test_call_family_arities() -> None:
    assert op.OPCODES[op.CALL].stack_inputs == 7
    assert op.OPCODES[op.CALLCODE].stack_inputs == 7
    assert op.OPCODES[op.DELEGATECALL].stack_inputs == 6
    assert op.OPCODES[op.STATICCALL].stack_inputs == 6
    for value in (op.CALL, op.CALLCODE, op.DELEGATECALL, op.STATICCALL):
        assert op.OPCODES[value].is_call
        assert op.OPCODES[value].stack_outputs == 1


def test_terminators() -> None:
    for value in (op.STOP, op.RETURN, op.REVERT, op.SELFDESTRUCT, op.INVALID,
                  op.JUMP):
        assert op.OPCODES[value].is_terminator
    assert not op.OPCODES[op.JUMPI].is_terminator


def test_values_match_yellow_paper() -> None:
    expected = {
        "STOP": 0x00, "ADD": 0x01, "KECCAK256": 0x20, "CALLER": 0x33,
        "CALLDATALOAD": 0x35, "SLOAD": 0x54, "SSTORE": 0x55,
        "JUMP": 0x56, "JUMPI": 0x57, "JUMPDEST": 0x5B, "PUSH1": 0x60,
        "PUSH4": 0x63, "PUSH20": 0x73, "PUSH32": 0x7F,
        "CREATE": 0xF0, "CALL": 0xF1, "RETURN": 0xF3,
        "DELEGATECALL": 0xF4, "CREATE2": 0xF5, "STATICCALL": 0xFA,
        "REVERT": 0xFD, "SELFDESTRUCT": 0xFF,
    }
    for mnemonic, value in expected.items():
        assert op.BY_MNEMONIC[mnemonic].value == value


def test_lookup_helpers() -> None:
    assert op.opcode_for(0x01).mnemonic == "ADD"
    assert op.opcode_for(0x2F) is None
    assert op.push_opcode(4).value == op.PUSH4


def test_push_opcode_rejects_bad_width() -> None:
    import pytest
    with pytest.raises(ValueError):
        op.push_opcode(33)


def test_table_is_consistent() -> None:
    for value, opcode in op.OPCODES.items():
        assert opcode.value == value
        assert 0 <= opcode.immediate_size <= 32
        assert opcode.stack_inputs >= 0 and opcode.stack_outputs >= 0
        assert op.BY_MNEMONIC[opcode.mnemonic] is opcode
