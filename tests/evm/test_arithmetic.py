"""Arithmetic/logic opcode semantics, differentially tested against Python.

EVM operand order: the *first* operand of a binary op is the stack top.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evm import opcodes as op
from repro.utils.hexutil import WORD_MASK, from_signed, to_signed

from tests.evm.helpers import asm, binop_code, push, return_top, run_and_get_int

WORDS = st.integers(min_value=0, max_value=WORD_MASK)
SMALL = st.integers(min_value=0, max_value=2 ** 64)


@given(WORDS, WORDS)
def test_add(a: int, b: int) -> None:
    assert run_and_get_int(binop_code(op.ADD, a, b)) == (a + b) & WORD_MASK


@given(WORDS, WORDS)
def test_mul(a: int, b: int) -> None:
    assert run_and_get_int(binop_code(op.MUL, a, b)) == (a * b) & WORD_MASK


@given(WORDS, WORDS)
def test_sub(a: int, b: int) -> None:
    assert run_and_get_int(binop_code(op.SUB, a, b)) == (a - b) & WORD_MASK


@given(WORDS, WORDS)
def test_div(a: int, b: int) -> None:
    expected = a // b if b else 0
    assert run_and_get_int(binop_code(op.DIV, a, b)) == expected


@given(WORDS, WORDS)
def test_mod(a: int, b: int) -> None:
    expected = a % b if b else 0
    assert run_and_get_int(binop_code(op.MOD, a, b)) == expected


@given(WORDS, WORDS)
def test_sdiv(a: int, b: int) -> None:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        expected = 0
    else:
        quotient = abs(sa) // abs(sb)
        expected = from_signed(-quotient if (sa < 0) != (sb < 0) else quotient)
    assert run_and_get_int(binop_code(op.SDIV, a, b)) == expected


@given(WORDS, WORDS)
def test_smod(a: int, b: int) -> None:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        expected = 0
    else:
        remainder = abs(sa) % abs(sb)
        expected = from_signed(-remainder if sa < 0 else remainder)
    assert run_and_get_int(binop_code(op.SMOD, a, b)) == expected


@given(WORDS, WORDS)
def test_comparisons(a: int, b: int) -> None:
    assert run_and_get_int(binop_code(op.LT, a, b)) == int(a < b)
    assert run_and_get_int(binop_code(op.GT, a, b)) == int(a > b)
    assert run_and_get_int(binop_code(op.EQ, a, b)) == int(a == b)


@given(WORDS, WORDS)
def test_signed_comparisons(a: int, b: int) -> None:
    assert run_and_get_int(binop_code(op.SLT, a, b)) == int(to_signed(a) < to_signed(b))
    assert run_and_get_int(binop_code(op.SGT, a, b)) == int(to_signed(a) > to_signed(b))


@given(WORDS, WORDS)
def test_bitwise(a: int, b: int) -> None:
    assert run_and_get_int(binop_code(op.AND, a, b)) == a & b
    assert run_and_get_int(binop_code(op.OR, a, b)) == a | b
    assert run_and_get_int(binop_code(op.XOR, a, b)) == a ^ b


@given(WORDS)
def test_not_iszero(a: int) -> None:
    assert run_and_get_int(asm(push(a, 32), op.NOT) + return_top()) == a ^ WORD_MASK
    assert run_and_get_int(asm(push(a, 32), op.ISZERO) + return_top()) == int(a == 0)


@given(st.integers(min_value=0, max_value=300), WORDS)
def test_shifts(shift: int, value: int) -> None:
    shl = run_and_get_int(binop_code(op.SHL, shift, value))
    shr = run_and_get_int(binop_code(op.SHR, shift, value))
    assert shl == ((value << shift) & WORD_MASK if shift < 256 else 0)
    assert shr == (value >> shift if shift < 256 else 0)


@given(st.integers(min_value=0, max_value=300), WORDS)
def test_sar(shift: int, value: int) -> None:
    signed = to_signed(value)
    if shift >= 256:
        expected = from_signed(-1 if signed < 0 else 0)
    else:
        expected = from_signed(signed >> shift)
    assert run_and_get_int(binop_code(op.SAR, shift, value)) == expected


@given(st.integers(min_value=0, max_value=40), WORDS)
def test_byte(index: int, value: int) -> None:
    expected = (value >> (8 * (31 - index))) & 0xFF if index < 32 else 0
    assert run_and_get_int(binop_code(op.BYTE, index, value)) == expected


@given(SMALL, st.integers(min_value=0, max_value=64))
def test_exp(base: int, exponent: int) -> None:
    assert run_and_get_int(binop_code(op.EXP, base, exponent)) == pow(
        base, exponent, 1 << 256)


@given(WORDS, WORDS, WORDS)
def test_addmod_mulmod(a: int, b: int, n: int) -> None:
    code_add = asm(push(n, 32), push(b, 32), push(a, 32), op.ADDMOD) + return_top()
    code_mul = asm(push(n, 32), push(b, 32), push(a, 32), op.MULMOD) + return_top()
    assert run_and_get_int(code_add) == ((a + b) % n if n else 0)
    assert run_and_get_int(code_mul) == ((a * b) % n if n else 0)


@given(st.integers(min_value=0, max_value=32), WORDS)
def test_signextend(width: int, value: int) -> None:
    if width < 31:
        bits = 8 * (width + 1)
        truncated = value & ((1 << bits) - 1)
        if truncated & (1 << (bits - 1)):
            expected = truncated | (WORD_MASK ^ ((1 << bits) - 1))
        else:
            expected = truncated
    else:
        expected = value
    assert run_and_get_int(binop_code(op.SIGNEXTEND, width, value)) == expected


@pytest.mark.parametrize("a,b,expected", [
    (10, 3, 3),   # 10 / 3
    (3, 10, 0),   # 3 / 10
])
def test_div_operand_order(a: int, b: int, expected: int) -> None:
    """DIV computes top/next — the order bugs love to hide in."""
    assert run_and_get_int(binop_code(op.DIV, a, b)) == expected


def test_keccak256_opcode() -> None:
    from repro.utils.keccak import keccak256
    # store "abc" padded in memory, hash 3 bytes
    word = int.from_bytes(b"abc".ljust(32, b"\x00"), "big")
    code = asm(push(word, 32), push(0), op.MSTORE,
               push(3), push(0), op.KECCAK256) + return_top()
    assert run_and_get_int(code) == int.from_bytes(keccak256(b"abc"), "big")
