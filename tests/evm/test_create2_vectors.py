"""Official EIP-1014 CREATE2 address-derivation test vectors."""

from __future__ import annotations

import pytest

from repro.utils.keccak import keccak256

# (deployer, salt, init_code, expected address) from the EIP-1014 spec.
EIP1014_VECTORS = [
    ("0x0000000000000000000000000000000000000000",
     "0x0000000000000000000000000000000000000000000000000000000000000000",
     "0x00",
     "0x4D1A2e2bB4F88F0250f26Ffff098B0b30B26BF38"),
    ("0xdeadbeef00000000000000000000000000000000",
     "0x0000000000000000000000000000000000000000000000000000000000000000",
     "0x00",
     "0xB928f69Bb1D91Cd65274e3c79d8986362984fDA3"),
    ("0xdeadbeef00000000000000000000000000000000",
     "0x000000000000000000000000feed000000000000000000000000000000000000",
     "0x00",
     "0xD04116cDd17beBE565EB2422F2497E06cC1C9833"),
    ("0x0000000000000000000000000000000000000000",
     "0x0000000000000000000000000000000000000000000000000000000000000000",
     "0xdeadbeef",
     "0x70f2b2914A2a4b783FaEFb75f459A580616Fcb5e"),
    ("0x00000000000000000000000000000000deadbeef",
     "0x00000000000000000000000000000000000000000000000000000000cafebabe",
     "0xdeadbeef",
     "0x60f3f640a8508fC6a86d45DF051962668E1e8AC7"),
    ("0x00000000000000000000000000000000deadbeef",
     "0x00000000000000000000000000000000000000000000000000000000cafebabe",
     "0x" + "deadbeef" * 11,
     "0x1d8bfDC5D46DC4f61D6b6115972536eBE6A8854C"),
    ("0x0000000000000000000000000000000000000000",
     "0x0000000000000000000000000000000000000000000000000000000000000000",
     "0x",
     "0xE33C0C7F7df4809055C3ebA6c09CFe4BaF1BD9e0"),
]


def _derive(deployer: str, salt: str, init_code: str) -> str:
    sender = bytes.fromhex(deployer[2:])
    salt_bytes = bytes.fromhex(salt[2:])
    code = bytes.fromhex(init_code[2:])
    digest = keccak256(b"\xff" + sender + salt_bytes + keccak256(code))
    return "0x" + digest[12:].hex()


@pytest.mark.parametrize("deployer,salt,init_code,expected", EIP1014_VECTORS)
def test_eip1014_vector(deployer: str, salt: str, init_code: str,
                        expected: str) -> None:
    assert _derive(deployer, salt, init_code) == expected.lower()


def test_interpreter_matches_spec_derivation() -> None:
    """The interpreter's CREATE2 path reproduces the spec formula."""
    from repro.evm.interpreter import EVM, Message
    from repro.evm.state import MemoryState

    sender = bytes.fromhex("00000000000000000000000000000000deadbeef")
    salt = 0xCAFEBABE
    init_code = bytes.fromhex("deadbeef")  # invalid code: create fails, but
    # the address derivation happens first; use valid empty-return init:
    init_code = bytes.fromhex("60006000f3")  # PUSH1 0 PUSH1 0 RETURN
    state = MemoryState()
    evm = EVM(state)
    result = evm.execute(Message(sender=sender, to=None, data=init_code,
                                 create_salt=salt))
    assert result.success
    expected = keccak256(
        b"\xff" + sender + salt.to_bytes(32, "big")
        + keccak256(init_code))[12:]
    assert result.created_address == expected
