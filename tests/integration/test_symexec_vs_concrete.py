"""Differential: symbolic storage discovery covers concrete execution.

For compiled contracts, every storage slot a *concrete* execution touches
must appear in the symbolic summary (soundness of the §5.2 engine on
compiler-idiomatic code).  Random function/argument choices drive the
concrete side.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.blockchain import Blockchain
from repro.core.symexec import SymbolicExecutor
from repro.evm.environment import TransactionContext
from repro.evm.interpreter import EVM, Message
from repro.evm.state import OverlayState
from repro.evm.tracer import StorageTracer
from repro.lang import compile_contract, stdlib

from tests.conftest import ALICE, BOB

CONTRACT_FACTORIES = (
    lambda: stdlib.simple_wallet("W", ALICE),
    lambda: stdlib.simple_token("T", ALICE),
    lambda: stdlib.storage_proxy("P", b"\x01" * 20, ALICE),
    lambda: stdlib.audius_logic("AL"),
    lambda: stdlib.wyvern_logic("WL"),
    lambda: stdlib.batch_airdrop("AD", ALICE),
)


def _symbolic_concrete_slots(code: bytes) -> set[int]:
    summary = SymbolicExecutor().summarize(code)
    return {access.slot.base for access in summary.accesses
            if access.slot.kind == "concrete"}


def _symbolic_mapping_markers(code: bytes) -> set[int]:
    summary = SymbolicExecutor().summarize(code)
    return {access.slot.base for access in summary.accesses
            if access.slot.kind == "mapping"}


@given(st.integers(0, len(CONTRACT_FACTORIES) - 1),
       st.integers(0, 10),
       st.integers(0, 2 ** 64),
       st.integers(0, 2 ** 64))
@settings(max_examples=40, deadline=None)
def test_concrete_storage_touches_are_symbolically_known(
        factory_index: int, function_pick: int, arg_a: int,
        arg_b: int) -> None:
    contract = CONTRACT_FACTORIES[factory_index]()
    compiled = compile_contract(contract)
    if not contract.functions:
        return
    function = contract.functions[function_pick % len(contract.functions)]
    calldata = function.selector + arg_a.to_bytes(32, "big") + arg_b.to_bytes(
        32, "big")

    chain = Blockchain()
    chain.fund(ALICE, 10 ** 24)
    chain.fund(BOB, 10 ** 24)
    address = chain.deploy(ALICE, compiled.init_code).created_address

    tracer = StorageTracer()
    evm = EVM(OverlayState(chain.state), tx=TransactionContext(origin=BOB),
              tracer=tracer, block=chain.block_context())
    evm.execute(Message(sender=BOB, to=address, data=calldata,
                        gas=5_000_000))

    from repro.lang.storage_layout import mapping_element_slot
    symbolic_scalars = _symbolic_concrete_slots(compiled.runtime_code)
    symbolic_markers = _symbolic_mapping_markers(compiled.runtime_code)
    for event in tracer.events:
        if event.storage_address != address:
            continue
        if event.slot in symbolic_scalars:
            continue
        # Mapping elements hash to huge slots: accept any slot derivable
        # from a symbolically known marker with a word-aligned calldata key.
        keys = [arg_a, arg_b, int.from_bytes(BOB, "big"),
                int.from_bytes(ALICE, "big")]
        keys += list(range(64))  # loop indices used as mapping keys
        derivable = any(
            mapping_element_slot(key, marker) == event.slot
            for marker in symbolic_markers for key in keys)
        assert derivable, (
            f"concrete access to slot {hex(event.slot)} not predicted "
            f"symbolically for {contract.name}")
