"""Reproduction robustness: the paper's shapes hold across seeds.

A reproduction that only works at one RNG seed is curve-fitting.  These
tests regenerate the headline orderings on several fresh worlds and require
them to hold every time.
"""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import Proxion
from repro.corpus.generator import generate_landscape
from repro.corpus.ground_truth import build_accuracy_corpus
from repro.landscape.accuracy import table2
from repro.landscape.serialize import report_to_json
from repro.landscape.survey import table4_standards

SEEDS = (101, 202, 303)


@pytest.mark.parametrize("seed", SEEDS)
def test_standards_ordering_every_seed(seed: int) -> None:
    landscape = generate_landscape(total=260, seed=seed)
    report = Proxion(landscape.node, registry=landscape.registry,
                     dataset=landscape.dataset).analyze_all()
    rows = table4_standards(report)
    shares = {standard: share for standard, (_, share) in rows.items()}
    assert shares["EIP-1167"] > 0.5
    assert shares["EIP-1167"] > shares["Others"] > shares["EIP-1967"]


@pytest.mark.parametrize("seed", SEEDS)
def test_proxy_detection_exact_every_seed(seed: int) -> None:
    landscape = generate_landscape(total=200, seed=seed)
    report = Proxion(landscape.node, registry=landscape.registry,
                     dataset=landscape.dataset).analyze_all()
    for address, analysis in report.analyses.items():
        truth = landscape.truths[address]
        if truth.kind == "diamond":
            continue
        assert analysis.is_proxy == truth.is_proxy, truth.kind


@pytest.mark.parametrize("seed", (11, 29))
def test_table2_ordering_every_seed(seed: int) -> None:
    corpus = build_accuracy_corpus(pairs_per_case=5, seed=seed)
    matrices = table2(corpus, methodology="all")
    assert (matrices["storage"]["Proxion"].accuracy
            > matrices["storage"]["USCHunt"].accuracy)
    assert (matrices["storage"]["Proxion"].accuracy
            > matrices["storage"]["CRUSH"].accuracy)
    assert (matrices["function"]["Proxion"].accuracy
            > matrices["function"]["USCHunt"].accuracy)
    assert matrices["storage"]["Proxion"].fp == 0


def test_sweep_is_bit_reproducible() -> None:
    """Same seed ⇒ byte-identical serialized sweep."""
    def run() -> str:
        landscape = generate_landscape(total=120, seed=7)
        report = Proxion(landscape.node, registry=landscape.registry,
                         dataset=landscape.dataset).analyze_all()
        return report_to_json(report)

    first, second = run(), run()
    assert first == second
    assert json.loads(first)["summary"]["proxies"] > 0
