"""The sweep supervisor: heartbeats, respawns, bisection, quarantine.

Chaos plans here use the process-level ``crash``/``hang`` fault kinds —
they take the *worker* down, not the RPC call — so every test asserts the
supervisor's contract: the sweep completes, no contract is silently lost,
and the merged report matches the serial sweep modulo explicitly
quarantined ``worker-crash`` records.
"""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import Proxion
from repro.errors import ConfigurationError, WorkerCrash, classify_cause
from repro.landscape import report_to_json, shard_checkpoint_path
from repro.landscape.checkpoint import SweepCheckpoint
from repro.parallel import (
    SupervisorConfig,
    SweepSpec,
    run_sharded_sweep,
    run_supervised_sweep,
)

TOTAL, SEED = 24, 7

#: Tight-but-safe monitor settings for tests: the heartbeat ticks per
#: contract, and a single simulated contract analyzes in well under a
#: second, so 10s only ever triggers on a genuinely wedged worker.
FAST = dict(shard_timeout_s=10.0, max_shard_retries=1)


@pytest.fixture(scope="module")
def spec() -> SweepSpec:
    return SweepSpec(total=TOTAL, seed=SEED)


@pytest.fixture(scope="module")
def world(spec: SweepSpec):
    return spec.build_world()


@pytest.fixture(scope="module")
def serial(world) -> dict:
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset)
    return json.loads(report_to_json(proxion.analyze_all(world.addresses())))


def _merged(result) -> dict:
    return json.loads(report_to_json(result.report))


def test_crash_free_supervision_is_byte_identical(spec, world,
                                                  serial) -> None:
    result = run_supervised_sweep(spec, workers=3, world=world,
                                  config=SupervisorConfig(**FAST))
    assert _merged(result) == serial
    assert result.supervised
    assert result.respawns == 0
    assert result.metrics.counter_value("parallel.respawns") == 0


def test_engine_delegates_process_path_to_supervisor(spec, world) -> None:
    result = run_sharded_sweep(spec, workers=3, world=world, processes=True,
                               supervise=SupervisorConfig(**FAST))
    assert result.supervised
    assert len(result.shards) == 3
    assert sum(stats.addresses for stats in result.shards) == len(
        world.addresses())


def test_windowed_crash_recovers_by_respawn(spec, world, serial) -> None:
    """A window-scoped crash models a transient OOM kill: the respawned
    worker resumes past fewer RPC calls, never re-enters the window, and
    the sweep converges with nothing quarantined."""
    chaotic = SweepSpec(total=TOTAL, seed=SEED, chaos="worker-crash",
                        chaos_seed=3)
    result = run_sharded_sweep(chaotic, workers=3, world=world,
                               processes=True,
                               supervise=SupervisorConfig(**FAST))
    assert result.respawns > 0
    assert result.poison_contracts == 0
    merged = _merged(result)
    assert merged["contracts"] == serial["contracts"]
    assert merged["failures"] == serial["failures"]
    assert result.metrics.counter_value("parallel.respawns") \
        == result.respawns


def test_sticky_poison_is_bisected_and_quarantined(spec, world,
                                                   serial) -> None:
    """A probability-scoped crash strikes the same contract on every
    attempt — respawning cannot help, so the supervisor bisects down to
    the single poison contract and quarantines it as ``worker-crash``."""
    chaotic = SweepSpec(total=TOTAL, seed=SEED, chaos="worker-poison",
                        chaos_seed=99)
    result = run_sharded_sweep(chaotic, workers=3, world=world,
                               processes=True,
                               supervise=SupervisorConfig(**FAST))
    assert result.poison_contracts > 0
    merged = _merged(result)
    quarantined = {record["address"] for record in merged["failures"]}
    assert len(quarantined) == result.poison_contracts
    for record in merged["failures"]:
        assert record["cause"] == "worker-crash"
        assert record["stage"] == "worker"
    # Zero lost contracts: every address is an analysis or a quarantine...
    assert len(merged["contracts"]) + len(quarantined) \
        == len(serial["contracts"]) + len(serial["failures"])
    # ...and every non-quarantined analysis is byte-for-byte the serial one.
    serial_by_addr = {record["address"]: record
                      for record in serial["contracts"]}
    for record in merged["contracts"]:
        assert record == serial_by_addr[record["address"]]
    assert result.metrics.counter_value("parallel.poison_contracts") \
        == result.poison_contracts
    assert result.metrics.counter_value("pipeline.quarantined",
                                        cause="worker-crash") \
        == result.poison_contracts


def test_hung_worker_is_killed_and_recovered(spec, world, serial) -> None:
    chaotic = SweepSpec(total=TOTAL, seed=SEED, chaos="worker-hang",
                        chaos_seed=5)
    result = run_sharded_sweep(
        chaotic, workers=3, world=world, processes=True,
        supervise=SupervisorConfig(shard_timeout_s=1.0,
                                   max_shard_retries=1))
    assert result.hung_kills > 0
    assert result.metrics.counter_value("parallel.hung_kills") \
        == result.hung_kills
    assert result.metrics.gauge("parallel.heartbeat_lag_seconds").value \
        >= 1.0
    merged = _merged(result)
    quarantined = {record["address"] for record in merged["failures"]}
    assert len(merged["contracts"]) + len(quarantined) \
        == len(serial["contracts"]) + len(serial["failures"])


def test_flight_recorder_replays_the_supervised_lifecycle(spec, world,
                                                          tmp_path) -> None:
    """The merged journal narrates everything the registry counts: every
    respawn, bisection and quarantine has its event, worker lifecycles
    close, and the live console renders even a mid-write journal."""
    from repro.obs import events as ev
    from repro.obs.console import journal_health, journal_snapshot, \
        render_status

    journal_path = str(tmp_path / "sweep.events.jsonl")
    chaotic = SweepSpec(total=TOTAL, seed=SEED, chaos="worker-poison",
                        chaos_seed=99)
    result = run_sharded_sweep(chaotic, workers=3, world=world,
                               processes=True, events_path=journal_path,
                               supervise=SupervisorConfig(**FAST))

    loaded = ev.read_journal(journal_path)
    assert loaded.header["schema"] == ev.SCHEMA
    assert loaded.truncated_tail == 0
    kinds: dict[str, int] = {}
    for event in loaded.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    assert kinds[ev.SWEEP_START] == 1 and kinds[ev.SWEEP_END] == 1
    assert kinds.get(ev.WORKER_RESPAWN, 0) == result.respawns
    assert kinds.get(ev.WORKER_HUNG_KILL, 0) == result.hung_kills
    assert kinds.get(ev.SUPERVISOR_QUARANTINE, 0) == result.poison_contracts
    assert kinds.get(ev.SUPERVISOR_BISECT, 0) \
        == result.metrics.counter_value("parallel.bisections")
    # Every spawned worker's lifecycle closes with an exit or a kill.
    assert kinds[ev.WORKER_SPAWN] == kinds.get(ev.WORKER_EXIT, 0) \
        + kinds.get(ev.WORKER_HUNG_KILL, 0)
    # Workers' own pipeline events were folded in with their provenance.
    pids = {event.pid for event in loaded.events
            if event.kind == ev.PIPELINE_START}
    assert len(pids) > 1

    quarantined = {event.attrs["address"] for event in loaded.events
                   if event.kind == ev.SUPERVISOR_QUARANTINE}
    assert quarantined == {record["address"]
                           for record in _merged(result)["failures"]}

    status = journal_snapshot(journal_path)
    assert status.finished
    assert status.quarantined >= result.poison_contracts
    assert "sweep finished" in render_status(status)
    assert journal_health(journal_path, hung_after_s=0.001)["healthy"]

    # A reader racing the writer sees a prefix, possibly cut mid-line:
    # the console must still render it (checkpoint tail-tolerance rules).
    payload = open(journal_path, "rb").read()
    partial = str(tmp_path / "partial.events.jsonl")
    with open(partial, "wb") as stream:
        stream.write(payload[:len(payload) * 2 // 3])
    assert render_status(journal_snapshot(partial))


def test_supervised_checkpoints_use_shard_naming(spec, world,
                                                 tmp_path) -> None:
    base = str(tmp_path / "sweep.ckpt")
    run_sharded_sweep(spec, workers=2, world=world, processes=True,
                      checkpoint_path=base,
                      supervise=SupervisorConfig(**FAST))
    for shard in range(2):
        path = tmp_path / f"sweep.ckpt.shard{shard:02d}"
        assert path.exists()
        header = json.loads(path.open(encoding="utf-8").readline())
        assert header["schema"] == "repro.checkpoint/1"


def test_fatal_misconfiguration_fails_loudly_not_healed(spec, world,
                                                        tmp_path) -> None:
    """A mismatched checkpoint fingerprint is an operator error — the
    supervisor must surface it, never 'heal' it by bisection."""
    base = str(tmp_path / "sweep.ckpt")
    with SweepCheckpoint.start(shard_checkpoint_path(base, 0),
                               world.addresses()[:3]):
        pass
    with pytest.raises(ConfigurationError, match="different"):
        run_sharded_sweep(spec, workers=2, world=world, processes=True,
                          checkpoint_path=base, resume=True,
                          supervise=SupervisorConfig(**FAST))


def test_supervisor_config_validation() -> None:
    with pytest.raises(ConfigurationError, match="positive"):
        SupervisorConfig(shard_timeout_s=0.0)
    with pytest.raises(ConfigurationError, match="max_shard_retries"):
        SupervisorConfig(max_shard_retries=0)


def test_worker_crash_classifies_as_worker_crash() -> None:
    error = WorkerCrash("worker exited with code 70", shard=2,
                        exitcode=70, attempts=3)
    assert classify_cause(error) == "worker-crash"
    assert error.shard == 2
    assert not error.hung
