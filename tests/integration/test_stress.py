"""Stress shapes: wide dispatchers, deep upgrade chains, big batches."""

from __future__ import annotations

from repro.baselines.salehi import SalehiReplay
from repro.chain.blockchain import Blockchain
from repro.chain.node import ArchiveNode
from repro.core.proxy_detector import ProxyDetector
from repro.core.signature_extractor import dispatcher_selectors
from repro.core.symexec import SymbolicExecutor
from repro.evm.cfg import dispatcher_functions
from repro.lang import ast, compile_contract, stdlib
from repro.utils import encode_call

from tests.conftest import ALICE, BOB


def _wide_contract(functions: int) -> ast.Contract:
    return ast.Contract(
        name="Wide",
        variables=(ast.VarDecl("owner", "address"),),
        functions=tuple(
            ast.Function(name=f"op_{index:03d}",
                         body=(ast.Return(ast.Const(index)),))
            for index in range(functions)),
    )


def test_wide_dispatcher_extraction_exact(chain: Blockchain) -> None:
    """40 functions: extraction stays exact and every function runs."""
    contract = _wide_contract(40)
    compiled = compile_contract(contract)
    expected = set(compiled.selector_table)
    assert dispatcher_selectors(compiled.runtime_code) == expected
    assert {entry.selector
            for entry in dispatcher_functions(compiled.runtime_code)
            } == expected

    address = chain.deploy(ALICE, compiled.init_code).created_address
    for index in (0, 17, 39):
        result = chain.call(address, encode_call(f"op_{index:03d}()"))
        assert result.success
        assert int.from_bytes(result.output, "big") == index


def test_wide_dispatcher_symexec_coverage() -> None:
    """Path exploration scales with the dispatcher width."""
    compiled = compile_contract(_wide_contract(30))
    summary = SymbolicExecutor(max_paths=128).summarize(compiled.runtime_code)
    assert summary.paths_truncated == 0
    assert summary.paths_explored >= 30


def test_deep_upgrade_chain_recovered(chain: Blockchain) -> None:
    """A proxy upgraded 15 times: the full chronology is recovered."""
    from repro.core.logic_finder import LogicFinder

    logics = [chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet(f"L{i}", ALICE)).init_code
    ).created_address for i in range(16)]
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", logics[0], ALICE)).init_code
    ).created_address
    for logic in logics[1:]:
        chain.advance_to_block(chain.latest_block_number + 10_000)
        assert chain.transact(
            ALICE, proxy,
            encode_call("setImplementation(address)", [logic])).success
    chain.advance_to_block(chain.latest_block_number + 100_000)

    node = ArchiveNode(chain)
    detector = ProxyDetector(chain.state, chain.block_context())
    history = LogicFinder(node).find(detector.check(proxy))
    assert history.logic_addresses == logics
    assert history.upgrade_count == 15
    # Still logarithmic-ish in chain length per change.
    assert history.api_calls_used < 40 * 16


def test_salehi_historical_replay_beats_current_state(chain: Blockchain) -> None:
    """A proxy whose logic was later zeroed: current-state replay loses the
    forward (call to empty logic still forwards... the slot is zeroed), the
    historical replay still sees it."""
    wallet = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", wallet, ALICE)).init_code
    ).created_address
    chain.transact(BOB, proxy, b"\x01\x02\x03\x04")      # fallback exercised
    # The owner later clears the implementation pointer entirely.
    chain.transact(ALICE, proxy, encode_call(
        "setImplementation(address)", [b"\x00" * 20]))

    node = ArchiveNode(chain)
    current = SalehiReplay(node)
    historical = SalehiReplay(node, use_historical_state=True)
    # Replaying against *current* state delegates to the zero address —
    # the DELEGATECALL event still fires, so both succeed here; what the
    # historical mode guarantees is the original target resolution.
    assert historical.is_proxy(proxy)
    assert current.is_proxy(proxy) in (True, False)  # defined, no crash


def test_batch_of_hundred_minimal_clones(chain: Blockchain) -> None:
    wallet = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    detector = ProxyDetector(chain.state, chain.block_context())
    for _ in range(100):
        clone = chain.deploy(ALICE,
                             stdlib.minimal_proxy_init(wallet)).created_address
        check = detector.check(clone)
        assert check.is_proxy and check.logic_address == wallet
