"""Chaos suite: the sweep's results survive injected faults.

The three guarantees of docs/robustness.md:

1. a transient fault plan behind the resilient layer yields a report
   **byte-identical** to the fault-free sweep (dedup counters included),
   while the metrics prove the faults actually fired;
2. a sustained outage degrades gracefully — unreachable contracts are
   quarantined with classified causes, nothing is silently lost, the
   sweep never raises;
3. a checkpointed sweep killed partway resumes into the same report
   (modulo the per-process dedup counters).
"""

from __future__ import annotations

import pytest

from repro.chain.faults import FaultyNode, canned_plan
from repro.chain.resilient import ResilientNode
from repro.core.pipeline import Proxion
from repro.corpus.generator import generate_landscape
from repro.landscape.checkpoint import SweepCheckpoint
from repro.landscape.serialize import report_to_dict, report_to_json


@pytest.fixture(scope="module")
def world():
    return generate_landscape(total=60, seed=9)


def _fault_free_report(world):
    return Proxion(world.node, registry=world.registry, dataset=world.dataset).analyze_all()


def test_transient_plan_is_byte_identical_to_fault_free(world) -> None:
    baseline = _fault_free_report(world)

    world.node.metrics.reset()
    node = ResilientNode(FaultyNode(world.node, canned_plan("transient",
                                                            seed=5)),
                         seed=1, sleep=None)
    proxion = Proxion(node, registry=world.registry, dataset=world.dataset)
    chaotic = proxion.analyze_all()

    assert report_to_json(chaotic) == report_to_json(baseline)
    registry = world.node.metrics
    injected = sum(int(c.value) for c in
                   registry.counters_named("faults.injected").values())
    retries = sum(int(c.value) for c in
                  registry.counters_named("resilience.retries").values())
    assert injected > 0, "the plan never fired — vacuous equivalence"
    assert retries == injected
    assert not chaotic.failures
    registry.reset()


def test_sustained_outage_quarantines_instead_of_raising(world) -> None:
    baseline = _fault_free_report(world)

    world.node.metrics.reset()
    node = ResilientNode(FaultyNode(world.node, canned_plan("outage",
                                                            seed=5)),
                         seed=1, sleep=None)
    proxion = Proxion(node, registry=world.registry, dataset=world.dataset)
    report = proxion.analyze_all()          # must not raise

    assert report.failures, "the outage quarantined nothing"
    # Conservation: every contract the healthy sweep analyzed is either
    # analyzed or quarantined here — none silently dropped.
    assert set(baseline.analyses) <= (set(report.analyses)
                                      | set(report.failures))
    causes = set(report.quarantine_census())
    assert causes <= {"circuit-open", "deadline-exceeded",
                      "transient-outage"}
    quarantined = sum(int(c.value) for c in world.node.metrics
                      .counters_named("pipeline.quarantined").values())
    assert quarantined == len(report.failures)
    world.node.metrics.reset()


def test_checkpointed_sweep_resumes_to_the_same_report(tmp_path,
                                                       world) -> None:
    addresses = world.dataset.addresses()
    path = str(tmp_path / "sweep.ckpt")

    uninterrupted = _fault_free_report(world)

    # First process: killed after the first half of the address list.
    with SweepCheckpoint.start(path, addresses) as checkpoint:
        Proxion(world.node, registry=world.registry, dataset=world.dataset).analyze_all(
            addresses[:len(addresses) // 2], checkpoint=checkpoint)

    # Second process: fresh Proxion (cold caches), resumes the full list.
    world.node.metrics.reset()
    with SweepCheckpoint.resume(path, addresses) as checkpoint:
        resumed = Proxion(world.node, registry=world.registry,
                          dataset=world.dataset).analyze_all(addresses,
                                                     checkpoint=checkpoint)

    restored = sum(int(c.value) for c in world.node.metrics
                   .counters_named("pipeline.resumed_contracts").values())
    assert restored > 0, "nothing was restored from the checkpoint"

    first = report_to_dict(uninterrupted)
    second = report_to_dict(resumed)
    # The resumed process only pays cache misses for the tail it actually
    # analyzes, so the per-sweep dedup counters legitimately differ.
    first["summary"].pop("dedup")
    second["summary"].pop("dedup")
    assert second == first
    world.node.metrics.reset()


def test_flaky_plan_with_latency_still_matches(world) -> None:
    baseline = _fault_free_report(world)

    world.node.metrics.reset()
    node = ResilientNode(FaultyNode(world.node, canned_plan("flaky",
                                                            seed=13)),
                         seed=2, sleep=None)
    report = Proxion(node, registry=world.registry, dataset=world.dataset).analyze_all()
    assert report_to_json(report) == report_to_json(baseline)
    world.node.metrics.reset()
