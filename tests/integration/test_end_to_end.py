"""End-to-end: full sweeps scored against ground truth; attack scenarios."""

from __future__ import annotations

import pytest

from repro.baselines.crush import Crush
from repro.baselines.salehi import SalehiReplay
from repro.baselines.uschunt import USCHunt
from repro.core.pipeline import Proxion, ProxionOptions
from repro.core.report import LandscapeReport
from repro.corpus.generator import Landscape


@pytest.fixture(scope="module")
def sweep(landscape: Landscape) -> LandscapeReport:
    proxion = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset)
    return proxion.analyze_all()


def test_proxy_detection_scores_against_truth(landscape: Landscape,
                                              sweep: LandscapeReport) -> None:
    tp = fp = fn = 0
    diamond_misses = 0
    for address, analysis in sweep.analyses.items():
        truth = landscape.truths[address]
        if truth.is_proxy and analysis.is_proxy:
            tp += 1
        elif analysis.is_proxy and not truth.is_proxy:
            fp += 1
        elif truth.is_proxy and not analysis.is_proxy:
            fn += 1
            if truth.kind == "diamond":
                diamond_misses += 1
    assert fp == 0                      # library users never misclassified
    assert fn == diamond_misses         # only the documented §8.1 limitation
    assert tp > 0.9 * len(landscape.true_proxies())


def test_every_standard_label_matches(landscape: Landscape,
                                      sweep: LandscapeReport) -> None:
    for address, analysis in sweep.analyses.items():
        truth = landscape.truths[address]
        if analysis.is_proxy and truth.is_proxy and truth.standard:
            if truth.kind == "minimal_clone" or truth.kind == "minimal_unique":
                assert analysis.standard.value == "EIP-1167"
            elif truth.kind in ("eip1967", "transparent"):
                assert analysis.standard.value == "EIP-1967"
            elif truth.kind == "eip1822":
                assert analysis.standard.value == "EIP-1822"
            elif truth.kind in ("custom_storage", "honeypot_pair",
                                "audius_pair", "wyvern_clone"):
                assert analysis.standard.value == "Others"


def test_logic_recovery_matches_truth(landscape: Landscape,
                                      sweep: LandscapeReport) -> None:
    for address, analysis in sweep.analyses.items():
        truth = landscape.truths[address]
        if not (truth.is_proxy and analysis.is_proxy):
            continue
        if truth.kind == "diamond":
            continue
        recovered = analysis.logic_history.logic_addresses
        assert set(truth.logic_addresses) <= set(recovered)


def test_collision_detection_matches_labels(landscape: Landscape,
                                            sweep: LandscapeReport) -> None:
    for address, analysis in sweep.analyses.items():
        truth = landscape.truths[address]
        if truth.expect_function_collision:
            assert analysis.has_function_collision, truth.kind
        if truth.expect_storage_collision:
            assert analysis.has_storage_collision, truth.kind
        if truth.storage_exploitable:
            assert analysis.has_verified_storage_exploit, truth.kind


def test_hidden_proxies_found_only_by_proxion(landscape: Landscape,
                                              sweep: LandscapeReport) -> None:
    """The paper's headline (§6.2): ProxioN reaches contracts that have
    neither source nor transactions; tx-history and source tools cannot."""
    # "Hidden" uses *effective* source availability: the §7.1 bytecode-hash
    # propagation means an unverified clone of a verified contract is not
    # hidden from source-based tools.
    hidden_true_proxies = [
        address for address, truth in landscape.truths.items()
        if truth.is_proxy and truth.kind != "diamond"
        and landscape.registry.resolve(
            address, landscape.chain.state.get_code(address)) is None
        and not landscape.chain.has_transactions(address)]
    assert hidden_true_proxies, "landscape should contain hidden proxies"

    found_by_proxion = sum(
        1 for address in hidden_true_proxies
        if sweep.analyses[address].is_proxy)
    assert found_by_proxion == len(hidden_true_proxies)

    crush = Crush(landscape.node).mine_pairs(hidden_true_proxies)
    assert not crush.proxies

    salehi = SalehiReplay(landscape.node)
    assert not salehi.find_proxies(hidden_true_proxies)

    uschunt = USCHunt(landscape.node, landscape.registry)
    assert not uschunt.find_proxies(hidden_true_proxies)


def test_proxion_finds_more_than_every_baseline(landscape: Landscape,
                                                sweep: LandscapeReport) -> None:
    addresses = landscape.addresses()
    proxion_found = {a for a in addresses if sweep.analyses[a].is_proxy}
    crush_found = Crush(landscape.node).mine_pairs(addresses).proxies
    uschunt_found = USCHunt(landscape.node, landscape.registry).find_proxies(
        addresses)
    salehi_found = SalehiReplay(landscape.node).find_proxies(addresses)
    assert len(proxion_found) > len(crush_found)
    assert len(proxion_found) > len(uschunt_found)
    assert len(proxion_found) > len(salehi_found)


def test_diamond_extension_closes_the_gap(landscape: Landscape,
                                          sweep: LandscapeReport) -> None:
    diamonds = landscape.contracts_of_kind("diamond")
    if not diamonds:
        pytest.skip("no diamonds at this landscape size")
    extended = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset,
                       options=ProxionOptions(detect_diamonds=True))
    for diamond in diamonds:
        assert not sweep.analyses[diamond].is_proxy       # default misses
        assert extended.check_proxy(diamond).is_proxy     # §8.2 finds


def test_sweep_throughput_counts(sweep: LandscapeReport,
                                 landscape: Landscape) -> None:
    assert len(sweep) == len(landscape.truths)
    assert sweep.proxy_check_cache_hits > 0  # clones deduped
    assert 0 <= sweep.emulation_failure_rate() < 0.1
