"""Cross-cutting property tests: random contracts through the full stack."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.blockchain import Blockchain
from repro.core.calldata import craft_probe_calldata
from repro.core.proxy_detector import ProxyDetector
from repro.core.signature_extractor import dispatcher_selectors
from repro.core.symexec import SymbolicExecutor
from repro.lang import ast, compile_contract, stdlib
from repro.utils.abi import function_selector

from tests.conftest import ALICE

_FUNCTION_NAMES = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=10),
    min_size=1, max_size=5, unique=True)

_TYPE_NAMES = st.lists(
    st.sampled_from(["bool", "address", "uint8", "uint64", "uint128",
                     "uint256", "bytes4"]),
    min_size=0, max_size=6)


def _build_contract(names: list[str], var_types: list[str]) -> ast.Contract:
    variables = tuple(ast.VarDecl(f"v{i}", t) for i, t in enumerate(var_types))
    functions = []
    for index, name in enumerate(names):
        if variables:
            var = variables[index % len(variables)]
            body: tuple[ast.Stmt, ...] = (ast.Return(ast.Load(var.name)),)
        else:
            body = (ast.Return(ast.Const(index)),)
        functions.append(ast.Function(name=name, body=body))
    return ast.Contract(name="Fuzzed", variables=variables,
                        functions=tuple(functions))


@given(_FUNCTION_NAMES, _TYPE_NAMES)
@settings(max_examples=25)
def test_compiled_contracts_execute_and_extract(names: list[str],
                                                var_types: list[str]) -> None:
    """Compile → deploy → every function callable; selectors extract exactly;
    no fuzzed non-proxy is ever classified as a proxy."""
    contract = _build_contract(names, var_types)
    compiled = compile_contract(contract)

    chain = Blockchain()
    chain.fund(ALICE, 10 ** 20)
    receipt = chain.deploy(ALICE, compiled.init_code)
    assert receipt.success

    address = receipt.created_address
    for function in contract.functions:
        result = chain.call(address, function.selector)
        assert result.success

    extracted = dispatcher_selectors(compiled.runtime_code)
    assert extracted == {function_selector(f"{name}()") for name in names}

    detector = ProxyDetector(chain.state, chain.block_context())
    check = detector.check(address)
    assert not check.is_proxy

    probe = craft_probe_calldata(compiled.runtime_code)
    assert probe[:4] not in extracted


@given(_FUNCTION_NAMES, _TYPE_NAMES)
@settings(max_examples=25)
def test_symexec_slots_subset_of_layout(names: list[str],
                                        var_types: list[str]) -> None:
    """Symbolic execution never invents slots outside the declared layout."""
    contract = _build_contract(names, var_types)
    compiled = compile_contract(contract)
    summary = SymbolicExecutor().summarize(compiled.runtime_code)
    declared_slots = {assignment.slot for assignment in compiled.layout}
    for access in summary.semantic_accesses():
        if access.slot.kind == "concrete":
            assert access.slot.base in declared_slots


@given(st.binary(min_size=20, max_size=20))
@settings(max_examples=25)
def test_any_minimal_proxy_detected(logic: bytes) -> None:
    """Every EIP-1167 instance is detected with its exact target, provided
    the probe forwards (the target account is empty → call succeeds)."""
    chain = Blockchain()
    chain.fund(ALICE, 10 ** 20)
    receipt = chain.deploy(ALICE, stdlib.minimal_proxy_init(logic))
    assert receipt.success
    detector = ProxyDetector(chain.state, chain.block_context())
    check = detector.check(receipt.created_address)
    assert check.is_proxy
    assert check.logic_address == logic


@given(st.lists(
    st.binary(min_size=20, max_size=20).filter(lambda a: any(a)),
    min_size=1, max_size=4, unique=True))
@settings(max_examples=20)
def test_upgrade_history_roundtrip(logics: list[bytes]) -> None:
    """Whatever sequence of (distinct) logic addresses a proxy walks
    through, the exact change-point recovery returns it in order."""
    from repro.chain.node import ArchiveNode
    from repro.core.logic_finder import slot_change_points
    from repro.utils import encode_call
    from repro.utils.hexutil import address_to_word

    chain = Blockchain()
    chain.fund(ALICE, 10 ** 20)
    proxy = chain.deploy(ALICE, compile_contract(
        stdlib.storage_proxy("P", logics[0], ALICE)).init_code).created_address
    for logic in logics[1:]:
        chain.advance_to_block(chain.latest_block_number + 1000)
        receipt = chain.transact(
            ALICE, proxy, encode_call("setImplementation(address)", [logic]))
        assert receipt.success
    chain.advance_to_block(chain.latest_block_number + 1000)
    changes = slot_change_points(ArchiveNode(chain), proxy, 1)
    assert [value for _, value in changes] == [
        address_to_word(logic) for logic in logics]
