"""Robustness: the analyzers must never crash, whatever the bytecode.

The whole point of ProxioN is analyzing *adversarial* contracts — attackers
control the bytecode.  Every analyzer entry point is fuzzed with arbitrary
byte blobs (seeded with DELEGATECALL bytes so the interesting paths run)
and must always return a well-formed result.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.blockchain import Blockchain
from repro.core.function_collision import FunctionCollisionDetector
from repro.core.proxy_detector import ProxyCheck, ProxyDetector
from repro.core.storage_collision import StorageCollisionDetector
from repro.core.symexec import SymbolicExecutor
from repro.evm.cfg import build_cfg, dispatcher_functions
from repro.evm.state import MemoryState

from tests.conftest import ALICE

TARGET = b"\xcc" * 20

# Arbitrary bytes with a sprinkle of structure so delegatecall paths fire.
_ADVERSARIAL = st.binary(min_size=1, max_size=300).map(
    lambda blob: blob + bytes([0xF4, 0x5B, 0x00]))


def _install(code: bytes) -> tuple[MemoryState, ProxyDetector]:
    state = MemoryState()
    state.set_code(TARGET, code)
    return state, ProxyDetector(state)


@given(_ADVERSARIAL)
@settings(max_examples=80)
def test_proxy_detector_total(code: bytes) -> None:
    state, detector = _install(code)
    check = detector.check(TARGET)
    assert isinstance(check, ProxyCheck)
    assert check.address == TARGET
    if not check.is_proxy:
        assert check.reason is not None
    else:
        assert check.logic_address is not None


@given(_ADVERSARIAL, _ADVERSARIAL)
@settings(max_examples=40)
def test_collision_detectors_total(proxy_code: bytes,
                                   logic_code: bytes) -> None:
    function_report = FunctionCollisionDetector().detect(proxy_code,
                                                         logic_code)
    assert function_report.proxy_mode == "bytecode"
    state = MemoryState()
    state.set_code(TARGET, proxy_code)
    storage_report = StorageCollisionDetector(None, state).detect(
        proxy_code, logic_code, TARGET, verify_exploits=False)
    for collision in storage_report.collisions:
        assert collision.proxy_use.overlaps(collision.logic_use)


@given(_ADVERSARIAL)
@settings(max_examples=60)
def test_symexec_total(code: bytes) -> None:
    summary = SymbolicExecutor(max_paths=32,
                               max_steps_per_path=800).summarize(code)
    assert summary.paths_explored >= 1
    for access in summary.accesses:
        assert access.kind in ("read", "write")
        assert 0 <= access.offset and access.offset + access.size <= 32


@given(_ADVERSARIAL)
@settings(max_examples=60)
def test_cfg_total(code: bytes) -> None:
    cfg = build_cfg(code)
    entries = dispatcher_functions(code)
    for entry in entries:
        assert len(entry.selector) == 4
    # Reachability never escapes the block set.
    assert cfg.reachable_from(0) <= set(cfg.blocks)


@given(st.binary(min_size=1, max_size=64))
@settings(max_examples=30)
def test_deploying_garbage_init_code_never_crashes_chain(blob: bytes) -> None:
    chain = Blockchain()
    chain.fund(ALICE, 10 ** 20)
    receipt = chain.deploy(ALICE, blob)
    # Either it deployed something or failed cleanly with an error string.
    assert receipt.success or receipt.error
