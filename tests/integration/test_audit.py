"""Audited sweeps: evidence completeness, parallel parity, checkpoints.

The contract under test: every verdict the pipeline emits must be backed
by evidence in the trail — a proxy verdict cites its matched pattern and
the storage reads behind it, a recovered logic history cites Algorithm 1
search steps, a collision cites the selector/slot observations that
produced it.  ``tools/check_explain.py`` enforces the same laws in CI
over a real audited sweep directory.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Proxion
from repro.obs.provenance import (
    AuditDir,
    DEDUP_HIT,
    FUNCTION_COLLISION,
    LOGIC_HISTORY,
    PROXY_PATTERN,
    SEARCH_STEP,
    SECTION_COLLISIONS,
    SECTION_LOGIC,
    SECTION_PROXY,
    STORAGE_COLLISION,
)


@pytest.fixture(scope="module")
def audited(landscape, tmp_path_factory):
    audit = AuditDir(str(tmp_path_factory.mktemp("audit")))
    proxion = Proxion(landscape.node, registry=landscape.registry,
                      dataset=landscape.dataset, audit=audit)
    report = proxion.analyze_all()
    return report, audit


def _kinds(trail):
    kinds = set()
    for section in trail.sections:
        for node in section.walk():
            kinds.add(node.kind)
    return kinds


def test_every_analysis_has_an_evidence_file_and_digest(audited) -> None:
    report, audit = audited
    recorded = set(audit.addresses())
    assert set(report.analyses) <= recorded
    for analysis in report.analyses.values():
        digest = analysis.evidence_digest
        assert digest is not None
        assert digest == audit.read(analysis.address).digest()


def test_proxy_verdicts_cite_pattern_evidence(audited) -> None:
    report, audit = audited
    proxies = report.proxies()
    assert proxies
    for analysis in proxies:
        kinds = _kinds(audit.read(analysis.address))
        assert SECTION_PROXY in kinds
        # Either the pattern was classified here, or the verdict was
        # transferred from the bytecode-dedup cache — both are evidence.
        assert PROXY_PATTERN in kinds or DEDUP_HIT in kinds, (
            f"proxy 0x{analysis.address.hex()} has no pattern evidence")


def test_recovered_logic_cites_search_steps(audited) -> None:
    report, audit = audited
    searched = [analysis for analysis in report.analyses.values()
                if analysis.logic_history
                and analysis.logic_history.api_calls_used > 0]
    assert searched
    for analysis in searched:
        kinds = _kinds(audit.read(analysis.address))
        assert SECTION_LOGIC in kinds and LOGIC_HISTORY in kinds
        assert SEARCH_STEP in kinds, (
            f"0x{analysis.address.hex()} recovered logic without "
            f"Algorithm 1 step evidence")


def test_collisions_cite_selector_or_slot_evidence(audited) -> None:
    report, audit = audited
    flagged = [analysis for analysis in report.analyses.values()
               if analysis.has_function_collision
               or analysis.has_storage_collision]
    assert flagged
    for analysis in flagged:
        kinds = _kinds(audit.read(analysis.address))
        assert SECTION_COLLISIONS in kinds
        if analysis.has_function_collision:
            assert FUNCTION_COLLISION in kinds
        if analysis.has_storage_collision:
            assert STORAGE_COLLISION in kinds


def test_audited_report_matches_unaudited(audited, landscape) -> None:
    from repro.landscape.serialize import report_to_dict
    report, _ = audited
    plain = Proxion(landscape.node, registry=landscape.registry,
                    dataset=landscape.dataset).analyze_all()
    audited_dict = report_to_dict(report)
    plain_dict = report_to_dict(plain)
    for record in audited_dict["contracts"]:
        record.pop("evidence", None)
    assert audited_dict == plain_dict
