"""The sharded sweep engine: equivalence, checkpoints, chaos, processes.

The load-bearing property throughout: a codehash-sharded sweep merges to
a report that serializes *byte-identically* to the serial sweep over the
same addresses — the parallel path is an optimization, never a different
answer.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.core.pipeline import Proxion
from repro.landscape import report_to_json, shard_checkpoint_path
from repro.landscape.checkpoint import SweepCheckpoint
from repro.parallel import SweepSpec, run_sharded_sweep, shard_addresses

TOTAL, SEED = 40, 7


@pytest.fixture(scope="module")
def spec() -> SweepSpec:
    return SweepSpec(total=TOTAL, seed=SEED)


@pytest.fixture(scope="module")
def world(spec: SweepSpec):
    return spec.build_world()


@pytest.fixture(scope="module")
def serial_json(world) -> str:
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset)
    return report_to_json(proxion.analyze_all(world.addresses()))


def test_codehash_inline_sweep_is_byte_identical(spec, world,
                                                 serial_json) -> None:
    result = run_sharded_sweep(spec, workers=4, strategy="codehash",
                               world=world, processes=False)
    assert report_to_json(result.report) == serial_json


def test_roundrobin_preserves_verdicts(spec, world, serial_json) -> None:
    """Roundrobin guarantees identical contracts/failures, not dedup sums."""
    result = run_sharded_sweep(spec, workers=4, strategy="roundrobin",
                               world=world, processes=False)
    merged = json.loads(report_to_json(result.report))
    serial = json.loads(serial_json)
    assert merged["contracts"] == serial["contracts"]
    assert merged["failures"] == serial["failures"]


def test_multiprocessing_sweep_is_byte_identical(spec, world,
                                                 serial_json) -> None:
    result = run_sharded_sweep(spec, workers=4, strategy="codehash",
                               world=world, processes=True)
    assert report_to_json(result.report) == serial_json
    assert len(result.shards) == 4
    assert sum(stats.addresses for stats in result.shards) == len(
        world.addresses())


def test_spawn_rebuilds_world_from_spec(spec, serial_json) -> None:
    """A worker with no inherited world regenerates it from the spec."""
    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("spawn start method unavailable")
    from repro.parallel.engine import _run_shard

    world = spec.build_world()
    partitions = shard_addresses(world.addresses(), 2, "codehash",
                                 code_of=world.chain.state.get_code)
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=2) as pool:
        results = pool.map(_run_shard,
                           [(spec, i, partition, None, False)
                            for i, partition in enumerate(partitions)])
    analyzed = sum(len(result["analyses"]) for result in results)
    assert analyzed == len(world.addresses())


def test_spawn_worker_composes_chaos_stack_from_spec(spec) -> None:
    """Under ``spawn`` nothing is inherited: the worker must rebuild the
    world *and* the chaos sandwich (``build_chaos_stack``) purely from the
    pickled spec — `--chaos` composing with `--workers` on every start
    method, not just ``fork``."""
    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("spawn start method unavailable")
    from repro.obs.registry import MetricsRegistry
    from repro.parallel.engine import _run_shard

    chaotic = SweepSpec(total=TOTAL, seed=SEED, chaos="transient",
                        chaos_seed=5)
    world = chaotic.build_world()
    partitions = shard_addresses(world.addresses(), 2, "codehash",
                                 code_of=world.chain.state.get_code)
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=2) as pool:
        results = pool.map(_run_shard,
                           [(chaotic, i, partition, None, False)
                            for i, partition in enumerate(partitions)])
    analyzed = sum(len(result["analyses"]) for result in results)
    assert analyzed == len(world.addresses())
    merged = MetricsRegistry()
    for result in results:
        merged.merge_state(result["metrics"])
    # The injected transient faults fired inside the spawned workers and
    # the resilient layer absorbed them — proof the sandwich was rebuilt.
    assert merged.counter_total("resilience.retries") > 0
    assert merged.counter_total("faults.injected") > 0


def test_merged_metrics_match_serial_rpc_totals(spec, world) -> None:
    """Codehash sharding sums per-worker RPC counters to the serial values."""
    serial = Proxion.from_chain(world.chain, registry=world.registry,
                                dataset=world.dataset)
    serial.analyze_all(world.addresses())
    result = run_sharded_sweep(spec, workers=4, strategy="codehash",
                               world=world, processes=False)
    for method in ("eth_getCode", "eth_getStorageAt", "eth_call"):
        assert (result.metrics.counter_value("rpc.calls", method=method)
                == serial.metrics.counter_value("rpc.calls", method=method))


def test_chaos_stack_composes_with_sharding(spec, world, serial_json) -> None:
    """`--chaos transient --workers N` still converges to the clean report."""
    chaotic = SweepSpec(total=TOTAL, seed=SEED, chaos="transient",
                        chaos_seed=5)
    result = run_sharded_sweep(chaotic, workers=4, strategy="codehash",
                               world=world, processes=False)
    assert report_to_json(result.report) == serial_json
    assert result.metrics.counter_total("resilience.retries") > 0


def test_shard_stats_account_for_cpu_critical_path(spec, world) -> None:
    result = run_sharded_sweep(spec, workers=3, strategy="roundrobin",
                               world=world, processes=False)
    assert result.sum_shard_cpu_s >= result.max_shard_cpu_s > 0
    assert result.critical_path_speedup >= 1.0


class TestShardedCheckpoints:
    def test_each_shard_writes_its_own_file(self, spec, world,
                                            tmp_path) -> None:
        base = str(tmp_path / "sweep.ckpt")
        run_sharded_sweep(spec, workers=3, strategy="codehash", world=world,
                          processes=False, checkpoint_path=base)
        for shard in range(3):
            path = shard_checkpoint_path(base, shard)
            assert os.path.exists(path)
            header = json.loads(open(path, encoding="utf-8").readline())
            assert header["schema"] == "repro.checkpoint/1"

    def test_lost_shard_is_recomputed_on_resume(self, spec, world, tmp_path,
                                                serial_json) -> None:
        """Delete one shard's checkpoint; resume restores the rest and
        recomputes only the lost shard — same bytes out."""
        base = str(tmp_path / "sweep.ckpt")
        run_sharded_sweep(spec, workers=3, strategy="codehash", world=world,
                          processes=False, checkpoint_path=base)
        os.unlink(shard_checkpoint_path(base, 1))

        result = run_sharded_sweep(spec, workers=3, strategy="codehash",
                                   world=world, processes=False,
                                   checkpoint_path=base, resume=True)
        # Contracts and failures are exactly the serial sweep's; only the
        # dedup counters shrink (restored shards pay no cache misses —
        # the documented resume caveat).
        merged = json.loads(report_to_json(result.report))
        serial = json.loads(serial_json)
        assert merged["contracts"] == serial["contracts"]
        assert merged["failures"] == serial["failures"]
        resumed = result.metrics.counter_total("pipeline.resumed_contracts")
        assert resumed > 0

    def test_fully_restored_resume_issues_no_analysis_rpcs(
            self, spec, world, tmp_path, serial_json) -> None:
        base = str(tmp_path / "sweep.ckpt")
        run_sharded_sweep(spec, workers=2, strategy="codehash", world=world,
                          processes=False, checkpoint_path=base)
        result = run_sharded_sweep(spec, workers=2, strategy="codehash",
                                   world=world, processes=False,
                                   checkpoint_path=base, resume=True)
        merged = json.loads(report_to_json(result.report))
        serial = json.loads(serial_json)
        assert merged["contracts"] == serial["contracts"]
        assert result.metrics.counter_value(
            "rpc.calls", method="eth_getCode") == 0

    def test_resume_against_wrong_partition_fails_loudly(
            self, spec, world, tmp_path) -> None:
        from repro.errors import ConfigurationError

        base = str(tmp_path / "sweep.ckpt")
        addresses = world.addresses()
        # A checkpoint fingerprinted for a different shard membership.
        with SweepCheckpoint.start(shard_checkpoint_path(base, 0),
                                   addresses[:3]):
            pass
        with pytest.raises(ConfigurationError, match="different"):
            run_sharded_sweep(spec, workers=1, strategy="codehash",
                              world=world, processes=False,
                              checkpoint_path=base, resume=True)
