"""Graceful drain: SIGTERM/SIGINT stop the daemon without losing work.

Two layers under test: :meth:`ServeApp.close` drains in-process (refuse
new queries, finish admitted ones, stop the follower at a poll boundary,
close the store cleanly), and the ``repro serve`` CLI entrypoint wires
real signals to it — checked end-to-end against a subprocess.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

from repro.serve import ServeApp, ServeConfig
from repro.store.store import AnalysisStore

from tests.serve.conftest import SEED, TOTAL


def _get(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


# ----------------------------------------------------------- in-process drain
def test_close_waits_for_inflight_queries(svc_store, svc_landscape) -> None:
    config = ServeConfig(store_path=svc_store, total=TOTAL, seed=SEED)
    app = ServeApp(config, landscape=svc_landscape).start()
    release = threading.Event()
    entered = threading.Event()

    original = app._dispatch_v1

    def slow_dispatch(path):
        entered.set()
        assert release.wait(timeout=10)
        return original(path)

    app._dispatch_v1 = slow_dispatch
    results: list[int] = []
    query = threading.Thread(target=lambda: results.append(
        _get(f"{app.url}/v1/server")[0]))
    query.start()
    assert entered.wait(timeout=10)       # a query is mid-flight

    closer = threading.Thread(target=app.close)
    closer.start()
    # close() is draining: it must not tear the server down under the
    # admitted request.  Give it a beat, then release the query.
    time.sleep(0.1)
    assert not results                    # still waiting on the in-flight one
    release.set()
    query.join(timeout=10)
    closer.join(timeout=10)
    assert results == [200]               # finished, not aborted


def test_close_is_idempotent(svc_store, svc_landscape) -> None:
    config = ServeConfig(store_path=svc_store, total=TOTAL, seed=SEED)
    app = ServeApp(config, landscape=svc_landscape).start()
    app.close()
    app.close()                           # second call is a no-op


def test_close_stops_the_follower_at_a_poll_boundary(
        svc_store, svc_landscape) -> None:
    config = ServeConfig(store_path=svc_store, total=TOTAL, seed=SEED,
                         follow=True, poll_interval_s=0.01,
                         simulate_deploys=1)
    app = ServeApp(config, landscape=svc_landscape).start()
    deadline = time.monotonic() + 10
    while (app.metrics.counter_total("serve.follower_polls") == 0
           and time.monotonic() < deadline):
        time.sleep(0.01)
    app.close()
    assert not app._follower.is_alive()
    # The store closed cleanly: a fresh reader opens it without recovery.
    with AnalysisStore(svc_store) as store:
        assert store.contract_count() > 0


# ------------------------------------------------------------ real signals
def test_sigterm_drains_the_serve_subprocess(svc_store, tmp_path) -> None:
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = os.path.join(root, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", svc_store,
         "--total", str(TOTAL), "--seed", str(SEED), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    try:
        line = process.stdout.readline()
        assert line.startswith("serve: http://"), line
        url = line.split()[1]
        status, body = _get(f"{url}/v1/server")
        assert status == 200
        assert json.loads(body)["kind"] == "server"

        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0
        assert "draining and shutting down" in stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)
    # The drained store is immediately reusable — nothing left locked or
    # half-written.
    with AnalysisStore(svc_store) as store:
        assert store.contract_count() > 0
