"""The ``repro.query/1`` answer records and their canonical encoding.

The snapshot tests pin the wire format with literal JSON: any change to
key names, ordering, indentation or the envelope shape fails here first,
which is the point — ``repro.query/1`` is a versioned contract, and a
different shape needs a ``repro.query/2``.
"""

from __future__ import annotations

import json

from repro import api
from repro.core.report import ContractFailure
from repro.store.store import AnalysisStore

ADDRESS = "0x" + "11" * 20

# ----------------------------------------------------- wire-format snapshots
CONTRACT_SNAPSHOT = """\
{
  "address": "0x1111111111111111111111111111111111111111",
  "analysis": null,
  "failure": null,
  "kind": "contract",
  "schema": "repro.query/1",
  "source": "store",
  "verdict": "skipped"
}"""

STATUS_SNAPSHOT = """\
{
  "kind": "status",
  "schema": "repro.query/1",
  "status": {
    "events": 3,
    "finished": true
  }
}"""

ERROR_SNAPSHOT = """\
{
  "error": "rate limit exceeded",
  "kind": "error",
  "retry_after_s": 0.5,
  "schema": "repro.query/1",
  "status": 429
}"""


def test_contract_answer_wire_format_is_pinned() -> None:
    answer = api.ContractAnswer(address=ADDRESS, verdict=api.VERDICT_SKIPPED,
                                source=api.SOURCE_STORE,
                                analysis=None, failure=None)
    assert api.to_json(answer) == CONTRACT_SNAPSHOT


def test_status_answer_wire_format_is_pinned() -> None:
    class Snapshot:
        @staticmethod
        def to_dict():
            return {"finished": True, "events": 3}

    assert api.to_json(api.status_answer(Snapshot())) == STATUS_SNAPSHOT


def test_error_answer_wire_format_is_pinned() -> None:
    answer = api.ErrorAnswer(error="rate limit exceeded", status=429,
                             retry_after_s=0.5)
    assert api.to_json(answer) == ERROR_SNAPSHOT


def test_encode_is_to_json_plus_print_newline() -> None:
    answer = api.ErrorAnswer(error="x")
    assert api.encode(answer) == (api.to_json(answer) + "\n").encode("utf-8")


def test_every_key_is_always_present() -> None:
    # Consumers never probe for optional fields: null, not absent.
    answer = api.ContractAnswer(address=ADDRESS, verdict=api.VERDICT_PROXY,
                                source=api.SOURCE_FRESH,
                                analysis={"standard": "EIP-1967"},
                                failure=None)
    record = json.loads(api.to_json(answer))
    assert set(record) == {"schema", "kind", "address", "verdict", "source",
                           "analysis", "failure"}


def test_schema_registry_pins_every_wire_format() -> None:
    assert sorted(api.SCHEMA_REGISTRY) == [
        "repro.bench-row/1",
        "repro.bench/1",
        "repro.checkpoint/1",
        "repro.events/1",
        "repro.evidence/1",
        "repro.query/1",
        "repro.store/1",
    ]
    for tag, (producer, meaning) in api.SCHEMA_REGISTRY.items():
        assert tag.count("/") == 1 and tag.rsplit("/", 1)[1].isdigit()
        assert producer and meaning


# --------------------------------------------------------- store constructors
def test_answer_from_store_verdict_priority_and_miss() -> None:
    store = AnalysisStore(":memory:")
    skipped = b"\x01" * 20
    store.save_skip(skipped)
    failed = b"\x02" * 20
    store.save_failure(ContractFailure(address=failed, cause="rpc",
                                       error="boom", stage="analysis"))

    answer = api.answer_from_store(store, skipped)
    assert (answer.verdict, answer.source) == (api.VERDICT_SKIPPED,
                                               api.SOURCE_STORE)
    assert answer.analysis is None and answer.failure is None

    answer = api.answer_from_store(store, failed)
    assert answer.verdict == api.VERDICT_QUARANTINED
    assert answer.failure["cause"] == "rpc"

    assert api.answer_from_store(store, b"\xee" * 20) is None


def test_answer_from_store_analysis_rows(svc_store) -> None:
    store = AnalysisStore(svc_store)
    rendered = store.proxies()[0][0]
    address = bytes.fromhex(rendered.removeprefix("0x"))
    answer = api.answer_from_store(store, address)
    assert answer.verdict == api.VERDICT_PROXY
    assert answer.address == rendered
    assert answer.analysis["address"] == rendered
    assert "proxy" in api.describe_answer(answer)
    store.close()


def test_describe_answer_covers_every_verdict() -> None:
    cases = {
        api.VERDICT_SKIPPED: "no code",
        api.VERDICT_NOT_PROXY: "not a proxy",
        api.VERDICT_QUARANTINED: "quarantined",
    }
    for verdict, needle in cases.items():
        answer = api.ContractAnswer(address=ADDRESS, verdict=verdict,
                                    source=api.SOURCE_STORE,
                                    analysis=None, failure=None)
        assert needle in api.describe_answer(answer)
