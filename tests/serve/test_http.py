"""The daemon's HTTP surface: /v1 queries, throttling, shared obs routes.

The headline guarantee under test: for the same store state,
``repro explain ADDR --json --store PATH`` and ``GET /v1/contract/ADDR``
return **byte-identical** bodies — neither surface owns a serializer.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.obs.export import to_prometheus
from repro.serve import ServeApp, ServeConfig
from repro.store.store import AnalysisStore

from tests.serve.conftest import SEED, TOTAL


def _get(url: str) -> tuple[int, dict, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def app(svc_store, svc_landscape):
    config = ServeConfig(store_path=svc_store, total=TOTAL, seed=SEED)
    with ServeApp(config, landscape=svc_landscape) as running:
        yield running


def _stored_proxy(svc_store) -> str:
    with AnalysisStore(svc_store) as store:
        return store.proxies()[0][0]


def test_contract_query_is_byte_identical_to_cli(app, svc_store,
                                                 capsys) -> None:
    rendered = _stored_proxy(svc_store)
    status, headers, body = _get(f"{app.url}/v1/contract/{rendered}")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    assert main(["explain", rendered, "--json", "--store", svc_store]) == 0
    assert body == capsys.readouterr().out.encode("utf-8")
    payload = json.loads(body)
    assert payload["schema"] == "repro.query/1"
    assert payload["verdict"] == "proxy"
    assert payload["source"] == "store"


def test_miss_analyzes_fresh_then_settles_into_the_store(app) -> None:
    rendered = "0x" + "dd" * 20     # nowhere in the landscape: dead
    status, _, body = _get(f"{app.url}/v1/contract/{rendered}")
    assert status == 200
    first = json.loads(body)
    assert (first["verdict"], first["source"]) == ("skipped", "fresh")
    # The miss wrote through; the WAL reader sees the commit.
    status, _, body = _get(f"{app.url}/v1/contract/{rendered}")
    assert status == 200
    second = json.loads(body)
    assert (second["verdict"], second["source"]) == ("skipped", "store")


def test_server_answer_reports_store_vitals(app, svc_store) -> None:
    rendered = _stored_proxy(svc_store)
    assert _get(f"{app.url}/v1/contract/{rendered}")[0] == 200
    status, _, body = _get(f"{app.url}/v1/server")
    assert status == 200
    payload = json.loads(body)
    assert payload["kind"] == "server"
    assert payload["store"] == svc_store
    with AnalysisStore(svc_store) as store:
        assert payload["contracts"] == store.contract_count()
    assert payload["following"] is False
    assert payload["queries"] > 0


def test_bad_address_is_a_typed_400(app) -> None:
    status, _, body = _get(f"{app.url}/v1/contract/not-hex")
    assert status == 400
    payload = json.loads(body)
    assert payload["kind"] == "error" and payload["status"] == 400


def test_unknown_v1_route_is_a_typed_404(app) -> None:
    status, _, body = _get(f"{app.url}/v1/nope")
    assert status == 404
    assert json.loads(body)["kind"] == "error"


def test_unknown_path_names_the_surface(app) -> None:
    status, _, body = _get(f"{app.url}/nope")
    assert status == 404
    assert b"/v1/contract/ADDR" in body


def test_obs_routes_are_mounted_on_the_same_server(app) -> None:
    status, _, body = _get(f"{app.url}/metrics")
    assert status == 200
    assert body == to_prometheus(app.metrics).encode("utf-8")
    status, _, body = _get(f"{app.url}/healthz")
    assert status == 200
    assert json.loads(body)["healthy"] is True
    status, _, _ = _get(f"{app.url}/progress")
    assert status == 404                 # no journal configured


def test_rate_limit_sheds_429_with_retry_after(svc_store,
                                               svc_landscape) -> None:
    config = ServeConfig(store_path=svc_store, total=TOTAL, seed=SEED,
                         rate_per_s=0.5, burst=3)
    rendered = _stored_proxy(svc_store)
    with ServeApp(config, landscape=svc_landscape) as app:
        codes = [_get(f"{app.url}/v1/contract/{rendered}")[0]
                 for _ in range(5)]
        assert codes[:3] == [200, 200, 200]
        assert set(codes[3:]) == {429}
        status, headers, body = _get(f"{app.url}/v1/contract/{rendered}")
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        payload = json.loads(body)
        assert payload["kind"] == "error"
        assert payload["retry_after_s"] > 0
        # Observability is never shed: probes must not see overload as
        # an outage.
        assert _get(f"{app.url}/metrics")[0] == 200
        assert app.metrics.counter_total("serve.throttled") >= 3


# ----------------------------------------------- --serve / --serve-obs alias
def test_survey_serve_flag_announces_url(tmp_path, capsys) -> None:
    journal = str(tmp_path / "sweep.events.jsonl")
    assert main(["survey", "--total", "20", "--seed", "3",
                 "--events", journal, "--serve", "0"]) == 0
    output = capsys.readouterr()
    assert "obs: serving /metrics /healthz /progress at http://127.0.0.1:" \
        in output.out
    assert "deprecated" not in output.err


def test_serve_obs_is_a_deprecated_alias_of_serve(tmp_path, capsys) -> None:
    # Same port through both spellings: one server, plus a stderr note.
    assert main(["survey", "--total", "20", "--seed", "3",
                 "--serve", "0", "--serve-obs", "0"]) == 0
    output = capsys.readouterr()
    assert "--serve-obs is deprecated" in output.err
    assert output.out.count("obs: serving") == 1
    # Conflicting ports are a configuration error, not a guess.
    assert main(["survey", "--total", "20",
                 "--serve", "8001", "--serve-obs", "8002"]) == 2
    assert "pass --serve only" in capsys.readouterr().err


def test_both_spellings_route_identically(app) -> None:
    # --serve and --serve-obs construct the same ObsServer, whose routes
    # delegate to route_observability — the same shared handler ServeApp
    # mounts.  Equality of the function's output with the daemon's live
    # /metrics body is what makes the spellings byte-identical.
    from repro.obs.http import route_observability

    status, content_type, text = route_observability(
        "/metrics", lambda: app.metrics)
    _, _, body = _get(f"{app.url}/metrics")
    assert status == 200
    assert body == text.encode("utf-8")
    assert content_type.startswith("text/plain")
