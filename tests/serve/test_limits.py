"""Rate limiting and admission control (the daemon's overload armour)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.serve import AdmissionGate, RateLimiter, TokenBucket


class Clock:
    """An explicit test clock: no sleeps, no flakes."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# -------------------------------------------------------------- token bucket
def test_bucket_spends_burst_then_hints_refill_time() -> None:
    bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    # Empty: one token is 1/rate seconds away.
    assert bucket.try_take(0.0) == pytest.approx(1.0)
    # Half a second later, half a token has trickled back in.
    assert bucket.try_take(0.5) == pytest.approx(0.5)
    assert bucket.try_take(2.0) == 0.0


def test_bucket_never_accumulates_past_burst() -> None:
    bucket = TokenBucket(rate=100.0, burst=3.0, now=0.0)
    # An idle aeon refills to burst, not to rate * elapsed.
    for _ in range(3):
        assert bucket.try_take(1000.0) == 0.0
    assert bucket.try_take(1000.0) > 0.0


# -------------------------------------------------------------- rate limiter
def test_limiter_rejects_nonpositive_rate() -> None:
    with pytest.raises(ConfigurationError):
        RateLimiter(0.0, burst=1)


def test_limiter_tracks_clients_independently() -> None:
    clock = Clock()
    limiter = RateLimiter(1.0, burst=1, clock=clock)
    assert limiter.admit("a") == 0.0
    assert limiter.admit("a") > 0.0     # a's bucket is empty...
    assert limiter.admit("b") == 0.0    # ...but b still has its burst


def test_limiter_refills_over_time() -> None:
    clock = Clock()
    limiter = RateLimiter(2.0, burst=1, clock=clock)
    assert limiter.admit("a") == 0.0
    assert limiter.admit("a") == pytest.approx(0.5)
    clock.now += 0.5
    assert limiter.admit("a") == 0.0


def test_limiter_lru_caps_client_state() -> None:
    clock = Clock()
    limiter = RateLimiter(1.0, burst=1, max_clients=2, clock=clock)
    assert limiter.admit("a") == 0.0
    assert limiter.admit("b") == 0.0
    assert limiter.admit("c") == 0.0    # evicts a (oldest)
    # a's drained bucket was recycled: it comes back with a full burst —
    # bounded memory is the priority, a flood only recycles full buckets.
    assert limiter.admit("a") == 0.0
    assert len(limiter._buckets) == 2


# ------------------------------------------------------------ admission gate
def test_gate_admits_up_to_slots_then_sheds_queue_full() -> None:
    gate = AdmissionGate(slots=2, queue_limit=0, timeout_s=0.01)
    assert gate.enter() == "admitted"
    assert gate.enter() == "admitted"
    assert gate.enter() == "queue-full"
    gate.leave()
    assert gate.enter() == "admitted"
    gate.leave()
    gate.leave()


def test_gate_queued_request_times_out() -> None:
    gate = AdmissionGate(slots=1, queue_limit=4, timeout_s=0.05)
    assert gate.enter() == "admitted"     # hold the only slot
    assert gate.enter() == "timeout"      # waits, then sheds
    gate.leave()


def test_gate_hands_slot_to_a_waiter() -> None:
    gate = AdmissionGate(slots=1, queue_limit=4, timeout_s=5.0)
    assert gate.enter() == "admitted"
    outcome: list[str] = []
    waiter = threading.Thread(target=lambda: outcome.append(gate.enter()))
    waiter.start()
    while gate.depth == 0:                # until the waiter is queued
        pass
    gate.leave()
    waiter.join(timeout=5.0)
    assert outcome == ["admitted"]
    gate.leave()
    assert gate.depth == 0


def test_gate_reports_active_admissions() -> None:
    gate = AdmissionGate(slots=2, queue_limit=0, timeout_s=0.01)
    assert gate.active == 0
    gate.enter()
    gate.enter()
    assert gate.active == 2
    gate.leave()
    assert gate.active == 1
    gate.leave()
    assert gate.active == 0


# ------------------------------------------------ 503 shed responses (HTTP)
def test_overload_503_carries_retry_after(svc_store, svc_landscape) -> None:
    # RFC 9110 pin: every shed response — overload and drain alike — must
    # tell the client when to come back, exactly like the 429 path does.
    import json
    import urllib.error
    import urllib.request

    from repro.serve import ServeApp, ServeConfig
    from tests.serve.conftest import SEED, TOTAL

    config = ServeConfig(store_path=svc_store, total=TOTAL, seed=SEED,
                         slots=1, queue_limit=0, queue_timeout_s=0.05)
    with ServeApp(config, landscape=svc_landscape) as app:
        app.gate.enter()                  # hold the only slot
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{app.url}/v1/server", timeout=10)
            error = excinfo.value
            assert error.code == 503
            assert int(error.headers["Retry-After"]) >= 1
            payload = json.loads(error.read())
            assert payload["kind"] == "error"
            assert payload["retry_after_s"] > 0
        finally:
            app.gate.leave()


def test_draining_503_carries_retry_after(svc_store, svc_landscape) -> None:
    import json

    from repro.serve import ServeApp, ServeConfig
    from tests.serve.conftest import SEED, TOTAL

    config = ServeConfig(store_path=svc_store, total=TOTAL, seed=SEED)
    with ServeApp(config, landscape=svc_landscape) as app:
        app._draining = True
        status, _, body, headers = app._route_v1("/v1/server", "client")
        assert status == 503
        assert headers["Retry-After"] == "1"
        payload = json.loads(body)
        assert payload["kind"] == "error" and "draining" in payload["error"]
        assert app.metrics.counter_total("serve.shed") >= 1
        app._draining = False             # let teardown queries pass
