"""Fixtures for the service-mode suite.

One small store seeded by a real sweep, and the matching landscape, are
shared module-wide: the daemon under test must front the same
deterministic world the seeding sweep ran against (otherwise fresh
analyses would answer about different contracts).
"""

from __future__ import annotations

import pytest

from repro.corpus.generator import generate_landscape

TOTAL, SEED = 40, 5


@pytest.fixture(scope="session")
def svc_landscape():
    return generate_landscape(total=TOTAL, seed=SEED)


@pytest.fixture(scope="session")
def svc_store(tmp_path_factory) -> str:
    from repro.cli import main

    path = str(tmp_path_factory.mktemp("serve") / "svc.store")
    assert main(["survey", "--total", str(TOTAL), "--seed", str(SEED),
                 "--store", path]) == 0
    return path
