"""WAL concurrency and crash-safety of the serving store.

Two claims the service mode stands on:

1. WAL readers answer while the single writer commits — no ``database
   is locked`` errors, and every committed write becomes visible.
2. ``kill -9`` of a live daemon loses at most the contract in flight:
   every fact a reader ever observed as committed survives the restart.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

from repro.cli import main
from repro.store.binding import attach_store
from repro.store.store import AnalysisStore

from tests.serve.conftest import SEED, TOTAL


def test_wal_readers_see_writes_without_blocking(tmp_path) -> None:
    path = str(tmp_path / "concurrent.store")
    binding = attach_store(path)
    assert binding is not None

    written = 200
    errors: list[Exception] = []
    stop = threading.Event()

    def read_loop() -> None:
        try:
            with AnalysisStore(path) as reader:
                while not stop.is_set():
                    # Point reads and aggregates, racing the writer.
                    reader.has_skip(b"\x00" * 19 + b"\x01")
                    reader.load_analysis_record(b"\xff" * 20)
                    reader._connection.execute(
                        "SELECT COUNT(*) FROM skips").fetchone()
        except Exception as error:  # surfaced below, not swallowed
            errors.append(error)

    readers = [threading.Thread(target=read_loop) for _ in range(4)]
    for thread in readers:
        thread.start()
    try:
        for index in range(written):
            binding.record_skip(index.to_bytes(20, "big"))
        assert not binding.disabled
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=10.0)
        binding.close()
    assert errors == []

    # Every committed write is visible to a fresh reader.
    with AnalysisStore(path) as reader:
        assert len(reader.load_skips()) == written


def _vitals(url: str) -> dict:
    with urllib.request.urlopen(url + "/v1/server", timeout=10) as response:
        return json.loads(response.read())


def test_kill9_during_serve_loses_no_settled_facts(tmp_path) -> None:
    store = str(tmp_path / "crash.store")
    assert main(["survey", "--total", str(TOTAL), "--seed", str(SEED),
                 "--store", store]) == 0
    with AnalysisStore(store) as reader:
        seeded = reader.contract_count()

    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    daemon = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--store", store,
         "--total", str(TOTAL), "--seed", str(SEED),
         "--follow", "--simulate", "2", "--poll", "0.05"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True)
    try:
        url = None
        for line in daemon.stdout:          # announced once it listens
            if line.startswith("serve: http"):
                url = line.split()[1]
                break
        assert url, "daemon never announced its URL"

        # Wait until the follower has settled new deployments past the
        # seeded sweep — facts a crash must not lose.
        deadline = time.monotonic() + 60.0
        observed = _vitals(url)
        while observed["contracts"] <= seeded:
            assert time.monotonic() < deadline, \
                f"follower never grew the store past {seeded}"
            time.sleep(0.2)
            observed = _vitals(url)
    finally:
        # kill -9 semantics: SIGKILL mid-write, no shutdown hooks run.
        if daemon.poll() is None:
            os.kill(daemon.pid, signal.SIGKILL)
        daemon.wait(timeout=10)
        daemon.stdout.close()

    # The store reopens clean and holds everything a reader saw settle.
    assert main(["store", "fsck", store]) == 0
    with AnalysisStore(store) as reader:
        assert reader.contract_count() >= observed["contracts"]

    # A restarted daemon fronting the same store answers from it.
    from repro.serve import ServeApp, ServeConfig
    config = ServeConfig(store_path=store, total=TOTAL, seed=SEED)
    with ServeApp(config) as app:
        restarted = _vitals(app.url)
    assert restarted["contracts"] >= observed["contracts"]
