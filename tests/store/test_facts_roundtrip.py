"""Full-fidelity round-trips of the hash-keyed dedup facts.

Every field of every cached fact must survive the store: a hydrated
cache that differs from the in-memory cache it replaces would make an
incremental sweep compute something else than a cold one.
"""

from __future__ import annotations

from repro.core.function_collision import (
    FunctionCollision,
    FunctionCollisionReport,
)
from repro.core.pipeline import Proxion
from repro.core.proxy_detector import LogicLocation, NotProxyReason, ProxyCheck
from repro.corpus.generator import generate_landscape
from repro.store import AnalysisStore, StoreBinding, load_facts
from repro.store.facts import (
    check_to_record,
    function_report_to_record,
    record_to_check,
    record_to_function_report,
    record_to_selectors,
    selectors_to_record,
    storage_report_to_record,
)


def test_proxy_check_round_trips_every_field() -> None:
    check = ProxyCheck(
        address=b"\x11" * 20,
        is_proxy=True,
        reason=None,
        logic_address=b"\x22" * 20,
        logic_location=LogicLocation.STORAGE,
        logic_slot=0x360894A13BA1A3210667C828492DB98DCA3E2076CC3735A920A3CA505D382BBC,
        emulation_error=None,
        probe_calldata=b"\xaa\xbb\xcc\xdd",
    )
    assert record_to_check(check_to_record(check)) == check


def test_negative_check_keeps_reason_and_error() -> None:
    check = ProxyCheck(
        address=b"\x33" * 20,
        is_proxy=False,
        reason=NotProxyReason.NO_DELEGATECALL,
        logic_address=None,
        logic_location=LogicLocation.UNKNOWN,
        logic_slot=None,
        emulation_error="out of gas at pc 17",
        probe_calldata=b"",
    )
    assert record_to_check(check_to_record(check)) == check


def test_selector_set_round_trips_canonically() -> None:
    selectors = (b"\xa9\x05\x9c\xbb", b"\x09\x5e\xa7\xb3", b"\x18\x16\x0d\xdd")
    record = selectors_to_record(selectors)
    assert record == sorted(record)  # canonical order, byte-stable JSON
    assert set(record_to_selectors(record)) == set(selectors)


def test_function_report_keeps_prototypes_and_modes() -> None:
    report = FunctionCollisionReport(
        proxy=b"\x44" * 20,
        logic=b"\x55" * 20,
        collisions=[FunctionCollision(selector=b"\x12\x34\x56\x78",
                                      proxy_prototype="owner()",
                                      logic_prototype=None)],
        proxy_mode="source",
        logic_mode="bytecode",
    )
    assert record_to_function_report(function_report_to_record(report)) \
        == report


def test_non_colliding_report_round_trips() -> None:
    """Clean pairs are facts too — forgetting them would re-run the pair."""
    report = FunctionCollisionReport(proxy=None, logic=None, collisions=[])
    assert record_to_function_report(function_report_to_record(report)) \
        == report


def test_sweep_harvested_facts_round_trip_through_a_store() -> None:
    """Everything a real sweep caches reloads equal, object for object."""
    world = generate_landscape(total=80, seed=13)
    binding = StoreBinding(AnalysisStore(":memory:"))
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset, store=binding)
    proxion.analyze_all(world.addresses())

    loaded = load_facts(binding.store)
    assert dict(loaded.checks) == dict(binding.check_cache)
    assert dict(loaded.selectors) == dict(binding.selector_cache)
    assert dict(loaded.function_reports) == dict(binding.function_cache)
    assert binding.storage_cache  # the corpus exercises storage pairs
    for pair, report in binding.storage_cache.items():
        restored = loaded.storage_reports[pair]
        assert storage_report_to_record(restored) \
            == storage_report_to_record(report)
    binding.close()
