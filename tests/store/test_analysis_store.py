"""The durable analysis store: instances, merge, schema discipline."""

from __future__ import annotations

import sqlite3

import pytest

from repro.core.pipeline import Proxion
from repro.core.report import ContractFailure
from repro.corpus.generator import generate_landscape
from repro.errors import ConfigurationError
from repro.landscape.serialize import analysis_to_dict
from repro.store import AnalysisStore, StoreBinding, shard_store_path
from repro.store import schema as store_schema

TOTAL, SEED = 60, 9


@pytest.fixture(scope="module")
def report():
    world = generate_landscape(total=TOTAL, seed=SEED)
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset)
    return proxion.analyze_all(world.addresses())


@pytest.fixture(scope="module")
def analyses(report):
    return list(report.analyses.values())


def test_analyses_round_trip_exactly(tmp_path, report) -> None:
    path = str(tmp_path / "a.store")
    with AnalysisStore(path) as store:
        store.save_report(report)
    with AnalysisStore(path) as store:
        restored = store.restored_analyses()
    by_address = {analysis.address: analysis for analysis in restored}
    assert len(by_address) == len(report.analyses)
    for analysis in report.analyses.values():
        assert analysis_to_dict(by_address[analysis.address]) \
            == analysis_to_dict(analysis)


def test_settled_code_hashes_cover_the_swept_corpus(tmp_path,
                                                    report) -> None:
    """A binding-driven sweep settles every alive codehash it saw."""
    path = str(tmp_path / "b.store")
    world = generate_landscape(total=TOTAL, seed=SEED)
    with StoreBinding(AnalysisStore(path)) as binding:
        proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                     dataset=world.dataset, store=binding)
        proxion.analyze_all(world.addresses())
        settled = binding.store.settled_code_hashes()
    assert settled == {analysis.code_hash
                       for analysis in report.analyses.values()}


def test_instance_tables_are_mutually_exclusive(analyses) -> None:
    analysis = analyses[0]
    address = analysis.address
    store = AnalysisStore(":memory:")
    store.save_analysis(analysis)
    store.save_failure(ContractFailure(address=address, cause="rpc",
                                       error="boom", stage="probe"))
    assert store.load_analyses() == {}
    assert set(store.load_failures()) == {address}
    # Re-analyzing the address moves it back out of the failure table.
    store.save_analysis(analysis)
    assert store.load_failures() == {}
    assert set(store.load_analyses()) == {address}
    store.save_skip(address)
    assert store.load_analyses() == {}
    assert store.load_skips() == {address}
    store.close()


def test_merge_from_folds_shard_stores(tmp_path, report,
                                       analyses) -> None:
    main_path = str(tmp_path / "main.store")
    half = len(analyses) // 2
    parts = (analyses[:half], analyses[half:])
    for shard, chunk in enumerate(parts):
        with AnalysisStore(shard_store_path(main_path, shard)) as shard_db:
            for analysis in chunk:
                shard_db.save_analysis(analysis)
            shard_db.commit()
    with AnalysisStore(main_path) as store:
        for shard in range(2):
            store.merge_from(shard_store_path(main_path, shard))
        assert len(store.load_analyses()) == len(report.analyses)


def test_merge_refuses_a_foreign_shard(tmp_path) -> None:
    alien = str(tmp_path / "alien.sqlite")
    connection = sqlite3.connect(alien)
    connection.execute("CREATE TABLE meta (key TEXT, value TEXT)")
    connection.execute("INSERT INTO meta VALUES ('schema', 'other/1')")
    connection.commit()
    connection.close()
    with AnalysisStore(str(tmp_path / "m.store")) as store:
        with pytest.raises(ConfigurationError):
            store.merge_from(alien)


def test_newer_schema_is_refused_loudly(tmp_path) -> None:
    path = str(tmp_path / "future.store")
    AnalysisStore(path).close()
    connection = sqlite3.connect(path)
    connection.execute("UPDATE meta SET value = 'repro.store/99' "
                       "WHERE key = 'schema'")
    connection.commit()
    connection.close()
    with pytest.raises(ConfigurationError, match="newer"):
        AnalysisStore(path)


def test_foreign_sqlite_file_is_refused(tmp_path) -> None:
    path = str(tmp_path / "foreign.sqlite")
    connection = sqlite3.connect(path)
    connection.execute("CREATE TABLE unrelated (x INTEGER)")
    connection.commit()
    connection.close()
    with pytest.raises(ConfigurationError, match="not a repro store"):
        AnalysisStore(path)


def test_missing_migration_hook_refuses_not_guesses(tmp_path,
                                                    monkeypatch) -> None:
    path = str(tmp_path / "old.store")
    AnalysisStore(path).close()
    monkeypatch.setattr(store_schema, "VERSION", 2)
    with pytest.raises(ConfigurationError, match="no migration hook"):
        AnalysisStore(path)


def test_registered_migration_hook_upgrades_in_order(tmp_path,
                                                     monkeypatch) -> None:
    path = str(tmp_path / "old.store")
    with AnalysisStore(path) as store:
        store.save_skip(b"\x77" * 20)
        store.commit()
    steps: list[int] = []

    def to_v2(connection) -> None:
        steps.append(2)
        connection.execute("CREATE TABLE v2_marker (x INTEGER)")

    def to_v3(connection) -> None:
        steps.append(3)
        connection.execute("CREATE TABLE v3_marker (x INTEGER)")

    monkeypatch.setattr(store_schema, "VERSION", 3)
    monkeypatch.setattr(store_schema, "MIGRATIONS", {1: to_v2, 2: to_v3})
    with AnalysisStore(path) as store:
        assert store.load_skips() == {b"\x77" * 20}  # data carried over
    assert steps == [2, 3]
    connection = sqlite3.connect(path)
    tag = connection.execute("SELECT value FROM meta WHERE key = 'schema'"
                             ).fetchone()[0]
    connection.close()
    assert tag == "repro.store/3"


def test_binding_writes_are_per_contract_transactions(tmp_path,
                                                      analyses) -> None:
    """Another connection sees each contract exactly at its commit."""
    path = str(tmp_path / "txn.store")
    binding = StoreBinding(AnalysisStore(path))
    reader = sqlite3.connect(path)

    def committed() -> int:
        return reader.execute("SELECT COUNT(*) FROM analyses").fetchone()[0]

    for index, analysis in enumerate(analyses[:5]):
        binding.record_analysis(analysis)
        assert committed() == index + 1
    reader.close()
    binding.close()
