"""`--store` composes with --workers, --chaos and --checkpoint.

The legacy ResultStore hung off the end of the *serial* path only; the
durable store is wired through the sharded engine and the supervisor, so
every robustness feature composes.  Shard workers write their own
``PATH.shardNN`` stores (single writer per file) and the parent folds
them back — these tests pin both the byte-identity of the report and
the cleanup of the shard stores.
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import Proxion
from repro.landscape import report_to_json
from repro.parallel import SweepSpec, run_sharded_sweep

TOTAL, SEED = 40, 7


@pytest.fixture(scope="module")
def spec() -> SweepSpec:
    return SweepSpec(total=TOTAL, seed=SEED)


@pytest.fixture(scope="module")
def world(spec: SweepSpec):
    return spec.build_world()


@pytest.fixture(scope="module")
def serial_json(world) -> str:
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset)
    return report_to_json(proxion.analyze_all(world.addresses()))


def _no_shard_leftovers(tmp_path) -> None:
    leftovers = [name for name in os.listdir(tmp_path)
                 if ".shard" in name or name.endswith(("-wal", "-shm"))]
    assert leftovers == []


def test_store_with_inline_workers_is_byte_identical(tmp_path, spec, world,
                                                     serial_json) -> None:
    path = str(tmp_path / "w.store")
    result = run_sharded_sweep(spec, workers=3, world=world,
                               processes=False, store_path=path)
    assert report_to_json(result.report) == serial_json
    _no_shard_leftovers(tmp_path)
    assert os.path.exists(path)


def test_store_with_worker_processes_is_byte_identical(tmp_path, spec,
                                                       world,
                                                       serial_json) -> None:
    path = str(tmp_path / "p.store")
    result = run_sharded_sweep(spec, workers=2, world=world,
                               processes=True, store_path=path)
    assert result.supervised
    assert report_to_json(result.report) == serial_json
    _no_shard_leftovers(tmp_path)


def test_incremental_parallel_resweep_is_byte_identical(tmp_path, spec,
                                                        world,
                                                        serial_json) -> None:
    """Grown corpus: warm the prefix, re-sweep the whole incrementally."""
    path = str(tmp_path / "grown.store")
    addresses = world.addresses()
    run_sharded_sweep(spec, workers=3, world=world, processes=False,
                      addresses=addresses[:len(addresses) // 2],
                      store_path=path)
    result = run_sharded_sweep(spec, workers=3, world=world,
                               processes=False, store_path=path,
                               incremental=True)
    assert report_to_json(result.report) == serial_json
    assert result.store_restored > 0
    counters = result.metrics.snapshot()["counters"]
    assert counters["pipeline.store_restored_contracts"] \
        == result.store_restored
    _no_shard_leftovers(tmp_path)


def test_fully_settled_parallel_resweep_skips_dispatch(tmp_path, spec,
                                                       world,
                                                       serial_json) -> None:
    path = str(tmp_path / "settled.store")
    run_sharded_sweep(spec, workers=2, world=world, processes=False,
                      store_path=path)
    result = run_sharded_sweep(spec, workers=2, world=world,
                               processes=False, store_path=path,
                               incremental=True)
    assert report_to_json(result.report) == serial_json
    assert result.shards == []  # no worker had anything to do


def test_store_composes_with_chaos(tmp_path, world, serial_json) -> None:
    """Transient faults are retried away; the stored sweep stays exact."""
    chaotic = SweepSpec(total=TOTAL, seed=SEED, chaos="transient")
    path = str(tmp_path / "chaos.store")
    result = run_sharded_sweep(chaotic, workers=3, world=world,
                               processes=False, store_path=path)
    assert report_to_json(result.report) == serial_json
    incremental = run_sharded_sweep(chaotic, workers=3, world=world,
                                    processes=False, store_path=path,
                                    incremental=True)
    assert report_to_json(incremental.report) == serial_json


def test_store_composes_with_checkpoints(tmp_path, spec, world,
                                         serial_json) -> None:
    store_path = str(tmp_path / "ckpt.store")
    checkpoint = str(tmp_path / "sweep.ckpt")
    result = run_sharded_sweep(spec, workers=2, world=world,
                               processes=False, store_path=store_path,
                               checkpoint_path=checkpoint)
    assert report_to_json(result.report) == serial_json
    # Both artifacts exist: per-shard checkpoints and the merged store.
    assert any(name.startswith("sweep.ckpt") for name in os.listdir(tmp_path))
    assert os.path.exists(store_path)


def test_stale_shard_stores_are_salvaged(tmp_path, spec, world,
                                         serial_json) -> None:
    """A parent killed before folding leaves PATH.shardNN files; the next
    sweep merges them so their contracts count as already settled."""
    from repro.store import AnalysisStore, attach_store, shard_store_path

    path = str(tmp_path / "salvage.store")
    addresses = world.addresses()
    half = len(addresses) // 2
    # Emulate the wreckage: a shard store with committed work (facts and
    # instances, exactly as a worker binding writes them), no parent fold
    # (the parent "died" between worker exit and merge).
    with attach_store(shard_store_path(path, 1)) as shard_binding:
        proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                     dataset=world.dataset,
                                     store=shard_binding)
        proxion.analyze_all(addresses[:half])
    AnalysisStore(path).close()

    result = run_sharded_sweep(spec, workers=2, world=world,
                               processes=False, store_path=path,
                               incremental=True)
    assert report_to_json(result.report) == serial_json
    assert result.store_restored > 0  # the wreck's commits were recovered
    assert not os.path.exists(shard_store_path(path, 1))
