"""Incremental sweeps and graceful degradation of the store binding.

The headline guarantee: a ``--store --incremental`` re-sweep of a grown
corpus analyzes only the delta — and its merged report serializes
**byte-identically** to a from-scratch sweep of the same corpus.
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import Proxion
from repro.corpus.generator import generate_landscape
from repro.errors import ConfigurationError
from repro.landscape import report_to_json
from repro.store import AnalysisStore, attach_store
from repro.utils.keccak import keccak256

TOTAL, SEED = 60, 9
PREFIX = 30  # the "old" corpus: the first PREFIX addresses


@pytest.fixture(scope="module")
def world():
    return generate_landscape(total=TOTAL, seed=SEED)


@pytest.fixture(scope="module")
def cold_json(world) -> str:
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset)
    return report_to_json(proxion.analyze_all(world.addresses()))


def _sweep(world, binding, addresses=None):
    """One serial sweep on a fresh node stack (isolated metrics)."""
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset, store=binding)
    report = proxion.analyze_all(addresses)
    return report, proxion.metrics


def _warm_store(world, path: str) -> None:
    """Sweep the PREFIX-address 'old' corpus into ``path``."""
    with attach_store(path) as binding:
        _sweep(world, binding, world.addresses()[:PREFIX])


def test_incremental_resweep_is_byte_identical(tmp_path, world,
                                               cold_json) -> None:
    path = str(tmp_path / "grown.store")
    _warm_store(world, path)
    with attach_store(path, incremental=True) as binding:
        report, _ = _sweep(world, binding)
    assert report_to_json(report) == cold_json


def test_incremental_resweep_emulates_only_new_codehashes(tmp_path,
                                                          world) -> None:
    """O(delta) work: proxy-check misses == codehashes the store lacks."""
    path = str(tmp_path / "delta.store")
    _warm_store(world, path)
    with AnalysisStore(path) as store:
        settled = store.settled_code_hashes()
        restored_addresses = set(store.load_analyses())
    fresh_hashes = {
        keccak256(world.chain.state.get_code(address))
        for address in world.addresses()
        if address not in restored_addresses
        and world.chain.state.get_code(address)
    } - settled

    with attach_store(path, incremental=True) as binding:
        _, metrics = _sweep(world, binding)
    counters = metrics.snapshot()["counters"]
    assert counters['dedup.misses{cache="proxy_check"}'] \
        == len(fresh_hashes)
    assert counters["pipeline.store_restored_contracts"] \
        == len(restored_addresses)


def test_fully_settled_resweep_does_no_emulation(tmp_path, world,
                                                 cold_json) -> None:
    path = str(tmp_path / "settled.store")
    with attach_store(path) as binding:
        _sweep(world, binding)
    with attach_store(path, incremental=True) as binding:
        report, metrics = _sweep(world, binding)
    assert report_to_json(report) == cold_json
    counters = metrics.snapshot()["counters"]
    assert counters.get('dedup.misses{cache="proxy_check"}', 0) == 0


def test_unreadable_store_is_quarantined_not_fatal(tmp_path, world,
                                                   cold_json) -> None:
    path = str(tmp_path / "garbage.store")
    with open(path, "wb") as stream:
        stream.write(b"this is not SQLite at all" * 40)
    warnings: list[str] = []
    binding = attach_store(path, warn=warnings.append)
    assert binding is not None  # quarantined + recreated, sweep proceeds
    report, _ = _sweep(world, binding)
    binding.close()
    assert report_to_json(report) == cold_json
    assert any("quarantined" in message for message in warnings)
    assert any(candidate.startswith("garbage.store.quarantined")
               for candidate in os.listdir(tmp_path))


def test_write_failure_degrades_to_in_memory_caches(tmp_path, world,
                                                    cold_json) -> None:
    """A store that dies mid-sweep must never abort the sweep."""
    path = str(tmp_path / "dying.store")
    warnings: list[str] = []
    binding = attach_store(path, warn=warnings.append)
    binding.store.close()  # every later write raises ProgrammingError
    report, metrics = _sweep(world, binding)
    assert report_to_json(report) == cold_json
    assert binding.disabled
    assert len(warnings) == 1  # one warning, not one per contract
    assert "repro store fsck" in warnings[0]
    assert metrics.snapshot()["counters"]["store.write_errors"] >= 1


def test_schema_mismatch_propagates_loudly(tmp_path) -> None:
    """Corruption degrades; a *future* store must refuse, not degrade."""
    path = str(tmp_path / "future.store")
    AnalysisStore(path).close()
    import sqlite3
    connection = sqlite3.connect(path)
    connection.execute("UPDATE meta SET value = 'repro.store/99' "
                       "WHERE key = 'schema'")
    connection.commit()
    connection.close()
    with pytest.raises(ConfigurationError, match="newer"):
        attach_store(path)
