"""Durability edges: kill -9 mid-commit, concurrent writers, fsck.

These tests earn the "crash-safe" in the store's headline: a SIGKILL at
any point leaves a database that opens clean, fscks clean, and resumes
incrementally to the byte-identical full report.
"""

from __future__ import annotations

import os
import signal
import sqlite3
import subprocess
import sys
import textwrap
import threading
import time

from repro.core.pipeline import Proxion
from repro.corpus.generator import generate_landscape
from repro.landscape import report_to_json
from repro.store import AnalysisStore, attach_store, fsck

TOTAL, SEED = 60, 9

_CHILD_SWEEP = textwrap.dedent("""
    import sys
    from repro.core.pipeline import Proxion
    from repro.corpus.generator import generate_landscape
    from repro.store import attach_store

    store_path = sys.argv[1]
    world = generate_landscape(total={total}, seed={seed})
    binding = attach_store(store_path)
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset, store=binding)
    proxion.analyze_all(world.addresses())
    binding.close()
""").format(total=TOTAL, seed=SEED)


def _spawn_sweep(store_path: str) -> subprocess.Popen:
    environment = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    environment["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen([sys.executable, "-c", _CHILD_SWEEP,
                             store_path], env=environment)


def _committed_rows(store_path: str) -> int:
    try:
        connection = sqlite3.connect(store_path)
        try:
            return connection.execute(
                "SELECT COUNT(*) FROM analyses").fetchone()[0]
        finally:
            connection.close()
    except sqlite3.Error:
        return 0


def test_kill9_mid_sweep_leaves_a_resumable_store(tmp_path) -> None:
    """SIGKILL during commits: fsck clean, incremental resume identical."""
    world = generate_landscape(total=TOTAL, seed=SEED)
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset)
    cold_json = report_to_json(proxion.analyze_all(world.addresses()))

    path = str(tmp_path / "killed.store")
    child = _spawn_sweep(path)
    try:
        deadline = time.monotonic() + 120
        while _committed_rows(path) < 5:
            assert child.poll() is None, "child finished before the kill"
            assert time.monotonic() < deadline, "child made no progress"
            time.sleep(0.01)
        os.kill(child.pid, signal.SIGKILL)
    finally:
        child.wait()

    report = fsck(path)
    assert report.ok, report.issues  # committed prefix is consistent

    survivors = _committed_rows(path)
    assert survivors >= 5  # the kill landed mid-corpus, not post-sweep

    with attach_store(path, incremental=True) as binding:
        resumed = Proxion.from_chain(world.chain, registry=world.registry,
                                     dataset=world.dataset, store=binding)
        final = resumed.analyze_all(world.addresses())
        restored = resumed.metrics.snapshot()["counters"].get(
            "pipeline.store_restored_contracts", 0)
    assert report_to_json(final) == cold_json
    assert restored >= survivors  # the killed run's commits all counted


def test_concurrent_writers_share_one_store_via_wal(tmp_path) -> None:
    """Bisected halves of a shard write the same file; WAL absorbs it."""
    world = generate_landscape(total=TOTAL, seed=SEED)
    proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                 dataset=world.dataset)
    report = proxion.analyze_all(world.addresses())
    analyses = list(report.analyses.values())
    half = len(analyses) // 2
    path = str(tmp_path / "shared.store")
    AnalysisStore(path).close()
    errors: list[BaseException] = []

    def writer(chunk) -> None:
        try:
            with AnalysisStore(path) as store:
                for analysis in chunk:
                    store.save_analysis(analysis)
                    store.commit()
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(chunk,))
               for chunk in (analyses[:half], analyses[half:])]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    with AnalysisStore(path) as store:
        assert len(store.load_analyses()) == len(analyses)
    assert fsck(path).clean


def test_fsck_flags_truncated_database_as_fatal(tmp_path) -> None:
    path = str(tmp_path / "truncated.store")
    with AnalysisStore(path) as store:
        for index in range(64):
            store.save_skip(bytes([index]) * 20)
        store.commit()
        store._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
    size = os.path.getsize(path)
    with open(path, "rb+") as stream:
        stream.truncate(size // 2)
    report = fsck(path)
    assert report.fatal
    assert not report.ok


def test_fsck_repairs_garbled_fact_rows(tmp_path) -> None:
    world = generate_landscape(total=40, seed=3)
    path = str(tmp_path / "garbled.store")
    with attach_store(path) as binding:
        proxion = Proxion.from_chain(world.chain, registry=world.registry,
                                     dataset=world.dataset, store=binding)
        proxion.analyze_all(world.addresses())

    connection = sqlite3.connect(path)
    connection.execute("UPDATE proxy_verdicts SET check_json = '{oops' "
                       "WHERE rowid = 1")
    connection.execute("UPDATE analyses SET analysis_json = 'not json' "
                       "WHERE rowid = 1")
    connection.commit()
    connection.close()

    first = fsck(path)
    assert not first.clean and not first.fatal

    repaired = fsck(path, repair=True)
    assert repaired.ok
    assert repaired.repaired
    assert fsck(path).clean  # idempotent: nothing left to flag


def test_fsck_reports_a_missing_store(tmp_path) -> None:
    report = fsck(str(tmp_path / "nope.store"))
    assert report.fatal and not report.ok
