"""Shared fixtures.

The expensive world-building fixtures (landscape, accuracy corpus) are
session-scoped: generation is deterministic, and the analyses under test
never mutate chain state (they run on overlays), so sharing is safe.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import settings

# Match the interpreter's recursion headroom up front so hypothesis does not
# observe a mid-test limit change (see repro.evm.interpreter.EVM.execute).
sys.setrecursionlimit(20_000)

from repro.chain.blockchain import Blockchain

# Property tests drive a full interpreter per example; keep example counts
# modest and disable the wall-clock deadline (EVM runs vary with load).
settings.register_profile("repro", max_examples=40, deadline=None)
settings.load_profile("repro")
from repro.corpus.generator import Landscape, generate_landscape
from repro.corpus.ground_truth import AccuracyCorpus, build_accuracy_corpus

ALICE = b"\xaa" * 20
BOB = b"\xbb" * 20
CAROL = b"\xcc" * 20
ETHER = 10 ** 18


@pytest.fixture()
def chain() -> Blockchain:
    """A fresh chain with funded EOAs."""
    fresh = Blockchain()
    for account in (ALICE, BOB, CAROL):
        fresh.fund(account, 10 ** 6 * ETHER)
    return fresh


@pytest.fixture(scope="session")
def landscape() -> Landscape:
    """A small deterministic landscape shared across read-only tests."""
    return generate_landscape(total=220, seed=11)


@pytest.fixture(scope="session")
def accuracy_corpus() -> AccuracyCorpus:
    """A small labelled collision corpus shared across read-only tests."""
    return build_accuracy_corpus(pairs_per_case=4, seed=3)
