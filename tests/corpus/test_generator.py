"""Landscape generation: determinism, truth consistency, distributions."""

from __future__ import annotations

from collections import Counter

from repro.corpus.generator import Landscape, generate_landscape
from repro.corpus import profiles


def test_generation_is_deterministic() -> None:
    first = generate_landscape(total=60, seed=5)
    second = generate_landscape(total=60, seed=5)
    assert first.addresses() == second.addresses()
    assert {a: t.kind for a, t in first.truths.items()} == {
        a: t.kind for a, t in second.truths.items()}


def test_different_seeds_differ() -> None:
    first = generate_landscape(total=60, seed=5)
    second = generate_landscape(total=60, seed=6)
    assert first.addresses() != second.addresses()


def test_all_truth_contracts_deployed(landscape: Landscape) -> None:
    for address in landscape.truths:
        assert landscape.chain.state.get_code(address), address.hex()


def test_dataset_covers_truths(landscape: Landscape) -> None:
    for address in landscape.truths:
        assert address in landscape.dataset


def test_proxy_truths_have_logic_addresses(landscape: Landscape) -> None:
    for truth in landscape.truths.values():
        if truth.is_proxy and truth.kind != "diamond":
            assert truth.logic_addresses
            for logic in truth.logic_addresses:
                assert landscape.chain.state.get_code(logic)


def test_proxy_share_tracks_paper(landscape: Landscape) -> None:
    """Around half of all contracts are proxies (54.2% on mainnet)."""
    total = len(landscape.truths)
    proxies = len(landscape.true_proxies())
    assert 0.35 <= proxies / total <= 0.75


def test_minimal_clones_dominate(landscape: Landscape) -> None:
    kinds = Counter(t.kind for t in landscape.truths.values()
                    if t.is_proxy)
    assert kinds["minimal_clone"] == max(kinds.values())


def test_source_availability_minority(landscape: Landscape) -> None:
    """Less than ~30% of contracts have source (paper: <20%)."""
    with_source = sum(1 for t in landscape.truths.values() if t.has_source)
    assert with_source / len(landscape.truths) < 0.35


def test_hidden_contracts_exist(landscape: Landscape) -> None:
    hidden = [a for a, t in landscape.truths.items()
              if not t.has_source
              and not landscape.chain.has_transactions(a)]
    assert len(hidden) > 0.2 * len(landscape.truths)


def test_deploy_years_span_range(landscape: Landscape) -> None:
    years = {t.deploy_year for t in landscape.truths.values()}
    assert min(years) <= 2017
    assert max(years) == 2023
    # Deploy blocks actually fall in the labelled year.
    for address, truth in landscape.truths.items():
        block = landscape.dataset.deploy_block_of(address)
        assert landscape.chain.year_of(block) == truth.deploy_year


def test_collision_labels_present(landscape: Landscape) -> None:
    labels = {t.kind for t in landscape.truths.values()
              if t.expect_function_collision}
    assert "honeypot_pair" in labels or "wyvern_clone" in labels


def test_clone_families_zipf_skewed(landscape: Landscape) -> None:
    clones = [t for t in landscape.truths.values()
              if t.kind == "minimal_clone"]
    by_target = Counter(t.logic_addresses[0] for t in clones)
    counts = sorted(by_target.values(), reverse=True)
    assert counts[0] >= counts[-1]
    assert len(by_target) <= profiles.POPULAR_CLONE_FAMILIES


def test_upgrades_recorded_when_forced() -> None:
    landscape = generate_landscape(total=80, seed=9, upgrade_probability=1.0)
    upgraded = [t for t in landscape.truths.values() if t.upgrade_count]
    assert upgraded
    for truth in upgraded:
        assert len(truth.logic_addresses) == truth.upgrade_count + 1


def test_year_profiles_are_sane() -> None:
    assert abs(sum(profiles.YEARLY_DEPLOY_SHARE.values()) - 1.0) < 0.01
    for year, profile in profiles.YEAR_PROFILES.items():
        assert 0 < profile.proxy_share < 1, year
        assert 0 < profile.source_share < 1
        assert 0 < profile.tx_share < 1
    # The mainstream era is proxy-dominated, the early era is not.
    assert profiles.YEAR_PROFILES[2023].proxy_share > 0.85
    assert profiles.YEAR_PROFILES[2015].proxy_share < 0.25
