"""Ground-truth accuracy corpus: labels are actually true on-chain."""

from __future__ import annotations

from repro.corpus.ground_truth import AccuracyCorpus, build_accuracy_corpus
from repro.utils import encode_call


def test_deterministic() -> None:
    first = build_accuracy_corpus(pairs_per_case=2, seed=1)
    second = build_accuracy_corpus(pairs_per_case=2, seed=1)
    assert [p.proxy for p in first.pairs] == [p.proxy for p in second.pairs]


def test_every_pair_deployed_and_sourced(accuracy_corpus: AccuracyCorpus) -> None:
    for pair in accuracy_corpus.pairs:
        assert accuracy_corpus.chain.state.get_code(pair.proxy)
        assert accuracy_corpus.chain.state.get_code(pair.logic)
        assert accuracy_corpus.registry.has_source(pair.proxy)


def test_case_classes_present(accuracy_corpus: AccuracyCorpus) -> None:
    cases = {pair.case for pair in accuracy_corpus.pairs}
    assert {"storage-positive", "storage-padding-trap", "storage-negative",
            "function-positive", "function-negative",
            "storage-positive-hard", "library-trap"} <= cases


def test_function_positive_pairs_actually_collide(
        accuracy_corpus: AccuracyCorpus) -> None:
    from repro.core.signature_extractor import dispatcher_selectors
    for pair in accuracy_corpus.pairs:
        if pair.case != "function-positive":
            continue
        proxy_selectors = dispatcher_selectors(
            accuracy_corpus.chain.state.get_code(pair.proxy))
        logic_selectors = dispatcher_selectors(
            accuracy_corpus.chain.state.get_code(pair.logic))
        assert proxy_selectors & logic_selectors


def test_storage_positive_exploitable_on_chain(
        accuracy_corpus: AccuracyCorpus) -> None:
    """The labelled storage positives are *really* exploitable: running the
    colliding logic function through the proxy clobbers proxy slot 0."""
    chain = accuracy_corpus.chain
    attacker = b"\x66" * 20
    exercised = 0
    for pair in accuracy_corpus.pairs:
        if pair.case != "storage-positive":
            continue
        before = chain.state.get_storage(pair.proxy, 0)
        for prototype in ("initialize()", "recordDeposit()"):
            snapshot = chain.state.snapshot()
            receipt = chain.transact(attacker, pair.proxy,
                                     encode_call(prototype))
            after = chain.state.get_storage(pair.proxy, 0)
            chain.state.revert(snapshot)
            if receipt.success and after != before:
                exercised += 1
                break
    positives = [p for p in accuracy_corpus.pairs
                 if p.case == "storage-positive"]
    assert exercised == len(positives)


def test_padding_traps_are_layout_compatible(
        accuracy_corpus: AccuracyCorpus) -> None:
    from repro.lang.storage_layout import compute_layout
    for pair in accuracy_corpus.pairs:
        if pair.case != "storage-padding-trap":
            continue
        proxy_source = accuracy_corpus.registry.get_source(pair.proxy)
        logic_source = accuracy_corpus.registry.get_source(pair.logic)
        proxy_layout = compute_layout(
            [(v.name, v.type_name) for v in proxy_source.storage_variables])
        logic_layout = compute_layout(
            [(v.name, v.type_name) for v in logic_source.storage_variables])
        for proxy_assignment in proxy_layout:
            for logic_assignment in logic_layout:
                if proxy_assignment.slot != logic_assignment.slot:
                    continue
                if proxy_assignment.overlaps(logic_assignment):
                    assert (proxy_assignment.offset, proxy_assignment.size) == (
                        logic_assignment.offset, logic_assignment.size)
                    assert (proxy_assignment.type_name
                            == logic_assignment.type_name)


def test_library_trap_pairs_have_delegatecall_history(
        accuracy_corpus: AccuracyCorpus) -> None:
    for pair in accuracy_corpus.pairs:
        if pair.case != "library-trap":
            continue
        receipts = accuracy_corpus.chain.transactions_of(pair.proxy)
        delegate_targets = {
            event.target
            for receipt in receipts
            for event in receipt.internal_calls
            if event.kind == "DELEGATECALL"}
        assert pair.logic in delegate_targets


def test_emuerr_proxy_fails_emulation(accuracy_corpus: AccuracyCorpus) -> None:
    from repro.core.proxy_detector import NotProxyReason, ProxyDetector
    detector = ProxyDetector(accuracy_corpus.chain.state,
                             accuracy_corpus.chain.block_context())
    emuerr = [p for p in accuracy_corpus.pairs
              if p.case == "emulation-error-pair"]
    assert emuerr
    for pair in emuerr:
        check = detector.check(pair.proxy)
        assert check.reason is NotProxyReason.EMULATION_ERROR


def test_pair_accessors(accuracy_corpus: AccuracyCorpus) -> None:
    storage_positives = accuracy_corpus.storage_positive_pairs()
    function_positives = accuracy_corpus.function_positive_pairs()
    assert all(p.storage_collision for p in storage_positives)
    assert all(p.function_collision for p in function_positives)
    assert storage_positives and function_positives
