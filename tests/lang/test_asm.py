"""Assembler: pushes, labels, fixups."""

from __future__ import annotations

import pytest

from repro.evm import opcodes as op
from repro.evm.disassembler import disassemble
from repro.lang.asm import Assembler


def test_push_minimal_width() -> None:
    assert Assembler().push(0).assemble() == bytes([op.PUSH1, 0])
    assert Assembler().push(0xFF).assemble() == bytes([op.PUSH1, 0xFF])
    assert Assembler().push(0x100).assemble() == bytes([op.PUSH0 + 2, 1, 0])


def test_push_bytes_preserves_leading_zeros() -> None:
    code = Assembler().push_bytes(b"\x00\x00\x00\x01").assemble()
    assert code == bytes([op.PUSH4, 0, 0, 0, 1])


def test_push_rejects_invalid() -> None:
    with pytest.raises(ValueError):
        Assembler().push(-1)
    with pytest.raises(ValueError):
        Assembler().push(1 << 256)
    with pytest.raises(ValueError):
        Assembler().push_bytes(b"")
    with pytest.raises(ValueError):
        Assembler().push_bytes(b"\x00" * 33)


def test_forward_label_reference() -> None:
    assembler = Assembler()
    assembler.jump("end")
    assembler.emit(op.INVALID)
    assembler.label("end")
    assembler.emit(op.STOP)
    code = assembler.assemble()
    listing = disassemble(code)
    jump_target = listing.instructions[0].operand_int
    assert code[jump_target] == op.JUMPDEST


def test_backward_label_reference() -> None:
    assembler = Assembler()
    assembler.label("start")
    assembler.emit(op.POP)
    assembler.jump("start")
    code = assembler.assemble()
    assert disassemble(code).instructions[2].operand_int == 0


def test_duplicate_label_rejected() -> None:
    assembler = Assembler().label("x")
    with pytest.raises(ValueError):
        assembler.label("x")


def test_undefined_label_rejected() -> None:
    assembler = Assembler().jump("nowhere")
    with pytest.raises(ValueError):
        assembler.assemble()


def test_jumpi_emits_push2_jumpi() -> None:
    assembler = Assembler()
    assembler.jumpi("t")
    assembler.label("t")
    code = assembler.assemble()
    assert code[0] == op.PUSH0 + 2
    assert code[3] == op.JUMPI
    assert code[4] == op.JUMPDEST


def test_label_executes_correctly() -> None:
    """A forward jump over an INVALID actually lands and returns 9."""
    from tests.evm.helpers import run_and_get_int

    assembler = Assembler()
    assembler.jump("ok")
    assembler.emit(op.INVALID)
    assembler.label("ok")
    assembler.push(9)
    assembler.push(0).emit(op.MSTORE)
    assembler.push(32).push(0).emit(op.RETURN)
    assert run_and_get_int(assembler.assemble()) == 9
