"""Compiler correctness: every statement/expression, executed on the EVM."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.evm.disassembler import disassemble
from repro.lang import ast, compile_contract
from repro.lang.compiler import CompileError
from repro.utils import encode_call, function_selector

from tests.conftest import ALICE, BOB


def _deploy(chain: Blockchain, contract: ast.Contract) -> bytes:
    receipt = chain.deploy(ALICE, compile_contract(contract).init_code)
    assert receipt.success, receipt.error
    return receipt.created_address


def _call_int(chain: Blockchain, address: bytes, prototype: str,
              args: list | None = None, sender: bytes = BOB) -> int:
    result = chain.call(address, encode_call(prototype, args or []),
                        sender=sender)
    assert result.success, result.error
    return int.from_bytes(result.output, "big")


def _expr_contract(expression: ast.Expr,
                   variables: tuple[ast.VarDecl, ...] = (),
                   constructor: tuple[ast.Stmt, ...] = ()) -> ast.Contract:
    return ast.Contract(
        name="ExprProbe",
        variables=variables,
        functions=(ast.Function(
            name="probe",
            params=(("a", "uint256"), ("b", "uint256")),
            body=(ast.Return(expression),)),),
        constructor=constructor,
    )


@pytest.mark.parametrize("operator,a,b,expected", [
    ("+", 3, 4, 7),
    ("-", 10, 4, 6),
    ("*", 6, 7, 42),
    ("/", 20, 6, 3),
    ("%", 20, 6, 2),
    ("==", 5, 5, 1),
    ("==", 5, 6, 0),
    ("!=", 5, 6, 1),
    ("<", 3, 4, 1),
    ("<", 4, 3, 0),
    (">", 4, 3, 1),
    ("<=", 4, 4, 1),
    ("<=", 5, 4, 0),
    (">=", 4, 5, 0),
    ("&", 0b1100, 0b1010, 0b1000),
    ("|", 0b1100, 0b1010, 0b1110),
    ("^", 0b1100, 0b1010, 0b0110),
    ("and", 1, 2, 1),
    ("and", 1, 0, 0),
    ("or", 0, 2, 1),
    ("or", 0, 0, 0),
])
def test_binary_operators(chain: Blockchain, operator: str, a: int, b: int,
                          expected: int) -> None:
    contract = _expr_contract(ast.BinOp(
        operator, ast.Param(0, "uint256"), ast.Param(1, "uint256")))
    address = _deploy(chain, contract)
    assert _call_int(chain, address, "probe(uint256,uint256)", [a, b]) == expected


def test_not_expression(chain: Blockchain) -> None:
    contract = _expr_contract(ast.Not(ast.Param(0, "uint256")))
    address = _deploy(chain, contract)
    assert _call_int(chain, address, "probe(uint256,uint256)", [0, 0]) == 1
    assert _call_int(chain, address, "probe(uint256,uint256)", [9, 0]) == 0


def test_caller_and_callvalue(chain: Blockchain) -> None:
    contract = ast.Contract(
        name="Env",
        functions=(
            ast.Function(name="who", body=(ast.Return(ast.Caller()),)),
            ast.Function(name="paid", body=(ast.Return(ast.CallValue()),)),
            ast.Function(name="me", body=(ast.Return(ast.SelfAddress()),)),
        ),
    )
    address = _deploy(chain, contract)
    assert _call_int(chain, address, "who()", sender=BOB) == int.from_bytes(
        BOB, "big")
    assert _call_int(chain, address, "me()") == int.from_bytes(address, "big")
    receipt = chain.transact(ALICE, address, encode_call("paid()"), value=77)
    assert receipt.success
    assert int.from_bytes(receipt.output, "big") == 77


def test_packed_storage_roundtrip(chain: Blockchain) -> None:
    """Sub-word writes only touch their own bytes."""
    contract = ast.Contract(
        name="Packed",
        variables=(
            ast.VarDecl("small", "uint8"),
            ast.VarDecl("mid", "uint16"),
            ast.VarDecl("addr", "address"),
        ),
        functions=(
            ast.Function(name="setSmall", params=(("v", "uint8"),),
                         body=(ast.Store("small", ast.Param(0, "uint8")),)),
            ast.Function(name="setMid", params=(("v", "uint16"),),
                         body=(ast.Store("mid", ast.Param(0, "uint16")),)),
            ast.Function(name="getSmall", body=(ast.Return(ast.Load("small")),)),
            ast.Function(name="getMid", body=(ast.Return(ast.Load("mid")),)),
            ast.Function(name="getAddr", body=(ast.Return(ast.Load("addr")),)),
        ),
        constructor=(
            ast.Store("addr", ast.Const(int.from_bytes(ALICE, "big"))),
        ),
    )
    address = _deploy(chain, contract)
    chain.transact(BOB, address, encode_call("setSmall(uint8)", [0xAB]))
    chain.transact(BOB, address, encode_call("setMid(uint16)", [0x1234]))
    assert _call_int(chain, address, "getSmall()") == 0xAB
    assert _call_int(chain, address, "getMid()") == 0x1234
    assert _call_int(chain, address, "getAddr()") == int.from_bytes(ALICE, "big")
    # All three live in slot 0, byte-packed.
    slot0 = chain.state.get_storage(address, 0)
    assert slot0 & 0xFF == 0xAB
    assert (slot0 >> 8) & 0xFFFF == 0x1234


def test_if_else(chain: Blockchain) -> None:
    contract = ast.Contract(
        name="Branchy",
        functions=(ast.Function(
            name="pick", params=(("c", "uint256"),),
            body=(ast.If(
                ast.Param(0, "uint256"),
                then_body=(ast.Return(ast.Const(111)),),
                else_body=(ast.Return(ast.Const(222)),),
            ),)),),
    )
    address = _deploy(chain, contract)
    assert _call_int(chain, address, "pick(uint256)", [1]) == 111
    assert _call_int(chain, address, "pick(uint256)", [0]) == 222


def test_require_reverts(chain: Blockchain) -> None:
    contract = ast.Contract(
        name="Guarded",
        functions=(ast.Function(
            name="must", params=(("c", "uint256"),),
            body=(ast.Require(ast.Param(0, "uint256")),
                  ast.Return(ast.Const(1)))),),
    )
    address = _deploy(chain, contract)
    assert _call_int(chain, address, "must(uint256)", [5]) == 1
    result = chain.call(address, encode_call("must(uint256)", [0]))
    assert not result.success


def test_revert_statement(chain: Blockchain) -> None:
    contract = ast.Contract(
        name="Naysayer",
        functions=(ast.Function(name="no", body=(ast.RevertStmt(),)),),
    )
    address = _deploy(chain, contract)
    assert not chain.call(address, encode_call("no()")).success


def test_store_at_dynamic_slot(chain: Blockchain) -> None:
    contract = ast.Contract(
        name="RawStore",
        functions=(ast.Function(
            name="writeRaw", params=(("slot", "uint256"), ("v", "uint256")),
            body=(ast.StoreAt(ast.Param(0, "uint256"),
                              ast.Param(1, "uint256")),)),),
    )
    address = _deploy(chain, contract)
    chain.transact(BOB, address,
                   encode_call("writeRaw(uint256,uint256)", [1234, 77]))
    assert chain.state.get_storage(address, 1234) == 77


def test_dispatcher_shape_matches_listing3(chain: Blockchain) -> None:
    """The emitted dispatcher contains the PUSH4 sig EQ PUSH2 JUMPI chain."""
    contract = ast.Contract(
        name="Shape",
        functions=(ast.Function(name="alpha", body=(ast.Return(ast.Const(1)),)),
                   ast.Function(name="beta", body=(ast.Return(ast.Const(2)),))),
    )
    compiled = compile_contract(contract)
    mnemonics = [inst.opcode.mnemonic
                 for inst in disassemble(compiled.runtime_code)]
    text = " ".join(mnemonics)
    assert "DUP1 PUSH4 EQ PUSH2 JUMPI" in text
    # The free-memory-pointer prologue.
    assert mnemonics[:3] == ["PUSH1", "PUSH1", "MSTORE"]


def test_unknown_selector_hits_fallback_revert(chain: Blockchain) -> None:
    contract = ast.Contract(
        name="NoFallback",
        functions=(ast.Function(name="hi", body=(ast.Return(ast.Const(1)),)),),
    )
    address = _deploy(chain, contract)
    result = chain.call(address, b"\xff\xff\xff\xff")
    assert not result.success  # default fallback reverts


def test_short_calldata_goes_to_fallback(chain: Blockchain) -> None:
    contract = ast.Contract(
        name="ShortData",
        variables=(ast.VarDecl("poked", "uint256"),),
        functions=(ast.Function(name="hi", body=(ast.Return(ast.Const(1)),)),),
        fallback=ast.Fallback(body=(ast.Store("poked", ast.Const(7)),)),
    )
    address = _deploy(chain, contract)
    receipt = chain.transact(BOB, address, b"\x01\x02")  # < 4 bytes
    assert receipt.success
    assert chain.state.get_storage(address, 0) == 7


def test_metadata_trailer_is_behind_invalid(chain: Blockchain) -> None:
    compiled = compile_contract(ast.Contract(name="Meta"))
    assert 0xFE in compiled.runtime_code
    # Executing the contract never reaches the trailer.
    address = _deploy(chain, ast.Contract(name="Meta"))
    assert not chain.call(address, b"").success  # fallback-less → revert


def test_identical_asts_compile_identically() -> None:
    first = compile_contract(stdlib_wallet())
    second = compile_contract(stdlib_wallet())
    assert first.runtime_code == second.runtime_code


def test_metadata_salt_differentiates_bytecode() -> None:
    base = stdlib_wallet()
    salted = ast.Contract(
        name=base.name, variables=base.variables, functions=base.functions,
        fallback=base.fallback, constructor=base.constructor,
        metadata_salt=b"\x01")
    assert (compile_contract(base).runtime_code
            != compile_contract(salted).runtime_code)


def stdlib_wallet() -> ast.Contract:
    from repro.lang import stdlib
    return stdlib.simple_wallet("W", ALICE)


def test_selector_table(chain: Blockchain) -> None:
    compiled = compile_contract(stdlib_wallet())
    assert function_selector("withdraw(uint256)") in compiled.selector_table
    assert compiled.selector_table[function_selector("deposit()")] == "deposit()"


def test_compile_error_on_unknown_variable() -> None:
    contract = ast.Contract(
        name="Broken",
        functions=(ast.Function(name="f",
                                body=(ast.Return(ast.Load("ghost")),)),),
    )
    with pytest.raises(CompileError):
        compile_contract(contract)


def test_compile_error_on_mapstore_to_scalar() -> None:
    contract = ast.Contract(
        name="Broken",
        variables=(ast.VarDecl("x", "uint256"),),
        functions=(ast.Function(
            name="f", body=(ast.MapStore("x", ast.Const(1), ast.Const(2)),)),),
    )
    with pytest.raises(CompileError):
        compile_contract(contract)
