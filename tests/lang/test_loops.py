"""The Repeat loop construct and its analyzer interactions."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.core.symexec import SymbolicExecutor
from repro.lang import ast, compile_contract, render_source
from repro.utils import encode_call

from tests.conftest import ALICE, BOB


def _looper(count_expr: ast.Expr) -> ast.Contract:
    """``accumulate(n)``: total += i for i in range(n); returns total."""
    return ast.Contract(
        name="Looper",
        variables=(ast.VarDecl("total", "uint256"),),
        functions=(
            ast.Function(
                name="accumulate",
                params=(("n", "uint256"),),
                body=(
                    ast.Repeat(count_expr, (
                        ast.Store("total", ast.BinOp(
                            "+", ast.Load("total"), ast.LoopIndex())),
                    )),
                    ast.Return(ast.Load("total")),
                ),
            ),
        ),
    )


def test_loop_computes_triangular_numbers(chain: Blockchain) -> None:
    contract = _looper(ast.Param(0, "uint256"))
    # A fresh deployment per n: `total` is persistent storage.
    for n, expected in ((0, 0), (1, 0), (5, 10), (17, 136)):
        fresh = chain.deploy(ALICE, compile_contract(contract).init_code
                             ).created_address
        result = chain.call(fresh, encode_call("accumulate(uint256)", [n]))
        assert result.success
        assert int.from_bytes(result.output, "big") == expected


def test_loop_gas_scales_with_iterations(chain: Blockchain) -> None:
    contract = _looper(ast.Param(0, "uint256"))
    address = chain.deploy(ALICE, compile_contract(contract).init_code
                           ).created_address
    small = chain.transact(BOB, address,
                           encode_call("accumulate(uint256)", [2]))
    large = chain.transact(BOB, address,
                           encode_call("accumulate(uint256)", [200]))
    assert large.gas_used > small.gas_used * 10


def test_unbounded_loop_hits_instruction_budget(chain: Blockchain) -> None:
    """An attacker-sized count exhausts the emulator's budget cleanly."""
    contract = _looper(ast.Param(0, "uint256"))
    address = chain.deploy(ALICE, compile_contract(contract).init_code
                           ).created_address
    receipt = chain.transact(
        BOB, address, encode_call("accumulate(uint256)", [10 ** 12]),
        )
    assert not receipt.success  # out of gas / budget, not a hang


def test_symexec_terminates_on_loops() -> None:
    """Symbolic execution of looping code ends via the step budget."""
    compiled = compile_contract(_looper(ast.Param(0, "uint256")))
    summary = SymbolicExecutor(max_paths=16,
                               max_steps_per_path=2000).summarize(
        compiled.runtime_code)
    assert summary.paths_explored >= 1
    # The storage accesses inside the loop are still discovered.
    slots = {access.slot.base for access in summary.semantic_accesses()
             if access.slot.kind == "concrete"}
    assert 0 in slots


def test_loop_renders_as_for(chain: Blockchain) -> None:
    text = render_source(_looper(ast.Param(0, "uint256")))
    assert "for (uint256 i = 0; i < arg0; i++) {" in text
    assert "total = (total + i);" in text


def test_proxy_detection_unbothered_by_loops(chain: Blockchain) -> None:
    """A proxy whose fallback loops before delegating still detects."""
    from repro.core.proxy_detector import ProxyDetector

    wallet_address = chain.deploy(
        ALICE, compile_contract(_looper(ast.Const(1))).init_code
    ).created_address
    proxy = ast.Contract(
        name="LoopingProxy",
        variables=(ast.VarDecl("counter", "uint256"),
                   ast.VarDecl("logic", "address")),
        fallback=ast.Fallback(body=(
            ast.Repeat(ast.Const(3), (
                ast.Store("counter", ast.BinOp(
                    "+", ast.Load("counter"), ast.Const(1))),
            )),
            ast.DelegateForwardCalldata(ast.Load("logic")),
        )),
        constructor=(
            ast.Store("logic",
                      ast.Const(int.from_bytes(wallet_address, "big"))),
        ),
    )
    address = chain.deploy(ALICE, compile_contract(proxy).init_code
                           ).created_address
    check = ProxyDetector(chain.state, chain.block_context()).check(address)
    assert check.is_proxy
    assert check.logic_address == wallet_address
    assert check.logic_slot == 1
