"""Differential testing: random expression trees, compiled-EVM vs Python.

A reference evaluator computes each randomly generated expression in
Python with EVM wrap-around semantics; the same tree is compiled into a
contract function and executed on the interpreter.  Any divergence —
operand order, masking, truthiness, division-by-zero conventions — fails.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.blockchain import Blockchain
from repro.lang import ast, compile_contract
from repro.utils import encode_call
from repro.utils.hexutil import WORD_MASK

from tests.conftest import ALICE, BOB

_BIN_OPS = ("+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=",
            "&", "|", "^", "and", "or")


def _leaf(draw) -> ast.Expr:
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return ast.Const(draw(st.integers(0, WORD_MASK)))
    if choice == 1:
        return ast.Param(0, "uint256")
    if choice == 2:
        return ast.Param(1, "uint256")
    return ast.Caller()


@st.composite
def _expression(draw, depth: int = 0) -> ast.Expr:
    if depth >= 3 or draw(st.booleans()):
        return _leaf(draw)
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return ast.Not(draw(_expression(depth + 1)))
    operator = draw(st.sampled_from(_BIN_OPS))
    return ast.BinOp(operator,
                     draw(_expression(depth + 1)),
                     draw(_expression(depth + 1)))


def _reference(expression: ast.Expr, a: int, b: int, caller: bytes) -> int:
    """Python reference evaluation with 256-bit wrap-around semantics."""
    if isinstance(expression, ast.Const):
        return expression.value & WORD_MASK
    if isinstance(expression, ast.Param):
        return a if expression.index == 0 else b
    if isinstance(expression, ast.Caller):
        return int.from_bytes(caller, "big")
    if isinstance(expression, ast.Not):
        return int(_reference(expression.expr, a, b, caller) == 0)
    assert isinstance(expression, ast.BinOp)
    left = _reference(expression.left, a, b, caller)
    right = _reference(expression.right, a, b, caller)
    operator = expression.op
    if operator == "+":
        return (left + right) & WORD_MASK
    if operator == "-":
        return (left - right) & WORD_MASK
    if operator == "*":
        return (left * right) & WORD_MASK
    if operator == "/":
        return left // right if right else 0
    if operator == "%":
        return left % right if right else 0
    if operator == "==":
        return int(left == right)
    if operator == "!=":
        return int(left != right)
    if operator == "<":
        return int(left < right)
    if operator == ">":
        return int(left > right)
    if operator == "<=":
        return int(left <= right)
    if operator == ">=":
        return int(left >= right)
    if operator == "&":
        return left & right
    if operator == "|":
        return left | right
    if operator == "^":
        return left ^ right
    if operator == "and":
        return int(bool(left) and bool(right))
    if operator == "or":
        return int(bool(left) or bool(right))
    raise AssertionError(operator)


@given(_expression(),
       st.integers(0, WORD_MASK),
       st.integers(0, WORD_MASK))
@settings(max_examples=60)
def test_compiled_expression_matches_reference(expression: ast.Expr,
                                               a: int, b: int) -> None:
    contract = ast.Contract(
        name="Diff",
        functions=(ast.Function(
            name="evaluate",
            params=(("a", "uint256"), ("b", "uint256")),
            body=(ast.Return(expression),)),),
    )
    compiled = compile_contract(contract)
    chain = Blockchain()
    chain.fund(ALICE, 10 ** 20)
    address = chain.deploy(ALICE, compiled.init_code).created_address
    result = chain.call(address,
                        encode_call("evaluate(uint256,uint256)", [a, b]),
                        sender=BOB)
    assert result.success, result.error
    assert int.from_bytes(result.output, "big") == _reference(
        expression, a, b, BOB)
