"""Solidity-style source rendering and the parsed-source records."""

from __future__ import annotations

from repro.chain.explorer import ContractSource
from repro.lang import ast, contract_source_of, render_source, stdlib

from tests.conftest import ALICE


def test_wallet_source_structure() -> None:
    text = render_source(stdlib.simple_wallet("Wallet", ALICE))
    assert "contract Wallet {" in text
    assert "address private owner;" in text
    assert "function withdraw(uint256 arg0) public payable {" in text
    assert "require((msg.sender == owner));" in text
    assert "payable(msg.sender).transfer(arg0);" in text
    assert "constructor()" in text


def test_proxy_source_has_fallback_delegatecall() -> None:
    text = render_source(stdlib.storage_proxy("P", b"\x01" * 20, ALICE))
    assert "fallback(bytes calldata input) external payable" in text
    assert "logic.delegatecall(msg.data);" in text


def test_fixed_slot_vars_rendered_as_comments() -> None:
    text = render_source(stdlib.eip1967_proxy("P", b"\x01" * 20, ALICE))
    assert "// implementation: address at fixed slot" in text
    assert "// admin: address at fixed slot" in text


def test_library_call_renders_encode_with_signature() -> None:
    text = render_source(stdlib.library_user("U", b"\x02" * 20))
    assert 'abi.encodeWithSignature("libraryAdd(uint256)"' in text


def test_if_else_and_revert_render() -> None:
    text = render_source(stdlib.transparent_proxy("T", b"\x01" * 20, ALICE))
    assert "if ((msg.sender == admin)) {" in text
    assert "revert();" in text
    assert "} else {" in text


def test_mapping_and_emit_render() -> None:
    text = render_source(stdlib.simple_token("T", ALICE))
    assert "mapping(address=>uint256) private balances;" in text
    assert "balances[msg.sender] =" in text
    assert "emit Transfer(msg.sender, arg0, arg1);" in text


def test_storeat_renders_assembly() -> None:
    contract = ast.Contract(
        name="Raw",
        functions=(ast.Function(
            name="w", params=(("s", "uint256"), ("v", "uint256")),
            body=(ast.StoreAt(ast.Param(0, "uint256"),
                              ast.Param(1, "uint256")),)),),
    )
    assert "assembly { sstore(arg0, arg1) }" in render_source(contract)


def test_constant_variable_rendered_with_value() -> None:
    contract = ast.Contract(
        name="HasConst",
        variables=(ast.VarDecl("LIMIT", "uint256", constant=True,
                               constant_value=100),),
    )
    assert "uint256 constant LIMIT = 100;" in render_source(contract)


def test_contract_source_of_fields() -> None:
    source = contract_source_of(stdlib.honeypot_proxy("H", b"\x01" * 20, ALICE))
    assert isinstance(source, ContractSource)
    assert source.contract_name == "H"
    assert "impl_LUsXCWD2AKCc()" in source.function_prototypes
    assert [v.type_name for v in source.storage_variables] == [
        "address", "address"]
    assert source.compiler_version == "v0.8.21"


def test_render_is_deterministic() -> None:
    contract = stdlib.simple_token("T", ALICE)
    assert render_source(contract) == render_source(contract)
