"""The Vyper-style (XOR/ISZERO) dispatcher variant."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.core.proxy_detector import ProxyDetector
from repro.core.signature_extractor import dispatcher_selectors
from repro.core.symexec import SymbolicExecutor
from repro.evm.cfg import dispatcher_functions
from repro.lang import compile_contract, stdlib
from repro.lang.compiler import CompileError
from repro.utils import encode_call

from tests.conftest import ALICE, BOB


def test_unknown_style_rejected() -> None:
    with pytest.raises(CompileError):
        compile_contract(stdlib.simple_wallet("W", ALICE),
                         dispatcher_style="huffman")


def test_vyper_style_executes_identically(chain: Blockchain) -> None:
    contract = stdlib.simple_wallet("W", ALICE)
    solc = compile_contract(contract, dispatcher_style="solc")
    vyper = compile_contract(contract, dispatcher_style="vyper")
    assert solc.runtime_code != vyper.runtime_code

    solc_addr = chain.deploy(ALICE, solc.init_code).created_address
    vyper_addr = chain.deploy(ALICE, vyper.init_code).created_address
    for prototype in ("ownerOf()", "deposit()"):
        left = chain.call(solc_addr, encode_call(prototype), sender=BOB)
        right = chain.call(vyper_addr, encode_call(prototype), sender=BOB)
        assert left.success == right.success
        assert left.output == right.output


def test_extractors_handle_both_styles() -> None:
    contract = stdlib.simple_token("T", ALICE)
    expected = set(compile_contract(contract).selector_table)
    for style in ("solc", "vyper"):
        compiled = compile_contract(contract, dispatcher_style=style)
        assert dispatcher_selectors(compiled.runtime_code) == expected
        assert {entry.selector
                for entry in dispatcher_functions(compiled.runtime_code)
                } == expected


def test_symexec_attributes_selectors_in_vyper_style() -> None:
    compiled = compile_contract(stdlib.simple_wallet("W", ALICE),
                                dispatcher_style="vyper")
    summary = SymbolicExecutor().summarize(compiled.runtime_code)
    selectors = {access.selector for access in summary.semantic_accesses()
                 if access.selector is not None}
    assert selectors  # per-function attribution survives the XOR idiom


def test_proxy_detection_unaffected_by_style(chain: Blockchain) -> None:
    wallet = chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet("W", ALICE)).init_code
    ).created_address
    proxy_contract = stdlib.storage_proxy("P", wallet, ALICE)
    detector = ProxyDetector(chain.state, chain.block_context())
    for style in ("solc", "vyper"):
        compiled = compile_contract(proxy_contract, dispatcher_style=style)
        address = chain.deploy(ALICE, compiled.init_code).created_address
        check = detector.check(address)
        assert check.is_proxy
        assert check.logic_slot == 1
