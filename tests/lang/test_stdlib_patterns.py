"""Every stdlib pattern deploys and behaves as specified."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.lang import compile_contract, stdlib
from repro.lang.storage_layout import (
    EIP1822_PROXIABLE_SLOT,
    EIP1967_ADMIN_SLOT,
    EIP1967_IMPLEMENTATION_SLOT,
)
from repro.utils import encode_call
from repro.utils.hexutil import address_to_word

from tests.conftest import ALICE, BOB, CAROL, ETHER


def _deploy(chain: Blockchain, contract_or_init) -> bytes:
    init = (contract_or_init if isinstance(contract_or_init, bytes)
            else compile_contract(contract_or_init).init_code)
    receipt = chain.deploy(ALICE, init)
    assert receipt.success, receipt.error
    return receipt.created_address


def _wallet(chain: Blockchain) -> bytes:
    return _deploy(chain, stdlib.simple_wallet("W", ALICE))


def test_minimal_proxy_roundtrip(chain: Blockchain) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.minimal_proxy_init(wallet))
    code = chain.state.get_code(proxy)
    assert len(code) == 45
    assert stdlib.extract_minimal_proxy_target(code) == wallet
    result = chain.call(proxy, encode_call("ownerOf()"))
    assert result.success  # delegated; reads proxy's (empty) slot 0
    assert int.from_bytes(result.output, "big") == 0


def test_extract_minimal_proxy_target_rejects_other_code() -> None:
    assert stdlib.extract_minimal_proxy_target(b"\x60\x00") is None
    runtime = stdlib.minimal_proxy_runtime(b"\x11" * 20)
    assert stdlib.extract_minimal_proxy_target(runtime + b"\x00") is None


def test_eip1967_proxy_slots_and_upgrade(chain: Blockchain) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.eip1967_proxy("P", wallet, ALICE))
    assert chain.state.get_storage(
        proxy, EIP1967_IMPLEMENTATION_SLOT) == address_to_word(wallet)
    assert chain.state.get_storage(
        proxy, EIP1967_ADMIN_SLOT) == address_to_word(ALICE)
    other = _wallet(chain)
    assert chain.transact(ALICE, proxy,
                          encode_call("upgradeTo(address)", [other])).success
    assert chain.state.get_storage(
        proxy, EIP1967_IMPLEMENTATION_SLOT) == address_to_word(other)
    assert not chain.transact(BOB, proxy,
                              encode_call("upgradeTo(address)", [wallet])).success


def test_eip1822_proxy_and_uups_logic(chain: Blockchain) -> None:
    logic = _deploy(chain, stdlib.uups_logic("L"))
    proxy = _deploy(chain, stdlib.eip1822_proxy("P", logic))
    assert chain.state.get_storage(
        proxy, EIP1822_PROXIABLE_SLOT) == address_to_word(logic)
    # The upgrade function lives in the *logic* and runs via delegatecall,
    # so the proxy's PROXIABLE slot is what changes.
    other = _deploy(chain, stdlib.uups_logic("L2"))
    receipt = chain.transact(BOB, proxy,
                             encode_call("updateCodeAddress(address)", [other]))
    assert receipt.success
    assert chain.state.get_storage(
        proxy, EIP1822_PROXIABLE_SLOT) == address_to_word(other)


def test_storage_proxy_guard(chain: Blockchain) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.storage_proxy("P", wallet, ALICE))
    assert chain.state.get_storage(proxy, 0) == address_to_word(ALICE)
    assert chain.state.get_storage(proxy, 1) == address_to_word(wallet)
    assert not chain.transact(
        BOB, proxy, encode_call("setImplementation(address)", [BOB + b""])
    ).success


def test_transparent_proxy_separates_admin(chain: Blockchain) -> None:
    wallet = _wallet(chain)
    proxy = _deploy(chain, stdlib.transparent_proxy("P", wallet, CAROL))
    # Users delegate...
    assert chain.call(proxy, encode_call("deposit()"), sender=BOB).success
    # ...the admin's unknown selectors revert instead of delegating.
    assert not chain.call(proxy, encode_call("deposit()"), sender=CAROL).success
    # Admin-only views work for the admin.
    assert chain.call(proxy, encode_call("admin()"), sender=CAROL).success
    assert not chain.call(proxy, encode_call("admin()"), sender=BOB).success


def test_diamond_registration_and_routing(chain: Blockchain) -> None:
    wallet = _wallet(chain)
    diamond = _deploy(chain, stdlib.diamond_proxy("D", ALICE))
    selector = int.from_bytes(encode_call("ownerOf()")[:4], "big")
    assert chain.transact(
        ALICE, diamond,
        encode_call("registerFacet(uint32,address)", [selector, wallet])
    ).success
    routed = chain.call(diamond, encode_call("ownerOf()"))
    assert routed.success
    assert routed.output[-20:] == ALICE  # diamond's own slot-0 owner
    assert not chain.call(diamond, b"\x12\x34\x56\x78").success
    # Only the owner registers facets.
    assert not chain.transact(
        BOB, diamond,
        encode_call("registerFacet(uint32,address)", [1, wallet])).success


def test_library_user_keeps_state_local(chain: Blockchain) -> None:
    library = _deploy(chain, stdlib.math_library())
    user = _deploy(chain, stdlib.library_user("U", library))
    assert chain.transact(BOB, user,
                          encode_call("addViaLibrary(uint256)", [5])).success
    assert chain.transact(BOB, user,
                          encode_call("addViaLibrary(uint256)", [6])).success
    result = chain.call(user, encode_call("totalStored()"))
    assert int.from_bytes(result.output, "big") == 11
    assert chain.state.get_storage(library, 0) == 0  # library untouched


def test_call_forwarder_is_not_delegation(chain: Blockchain) -> None:
    wallet = _wallet(chain)
    forwarder = _deploy(chain, stdlib.call_forwarder("F", wallet))
    receipt = chain.transact(BOB, forwarder, encode_call("ownerOf()"))
    assert receipt.success
    assert [event.kind for event in receipt.internal_calls] == ["CALL"]
    # ownerOf through plain CALL reads the WALLET's storage, not the
    # forwarder's.
    assert receipt.output[-20:] == ALICE


def test_honeypot_steals_instead_of_paying(chain: Blockchain) -> None:
    logic = _deploy(chain, stdlib.honeypot_logic())
    pot = _deploy(chain, stdlib.honeypot_proxy("HP", logic, ALICE))
    chain.fund(pot, 100 * ETHER)  # the bait
    alice_before = chain.state.get_balance(ALICE)
    bob_before = chain.state.get_balance(BOB)
    receipt = chain.transact(BOB, pot, encode_call("free_ether_withdrawal()"),
                             value=1 * ETHER)
    assert receipt.success
    # Bob paid 1 ETH; the owner pocketed it; Bob got nothing back.
    assert chain.state.get_balance(ALICE) == alice_before + 1 * ETHER
    assert chain.state.get_balance(BOB) == bob_before - 1 * ETHER


def test_honeypot_selector_collision_is_real() -> None:
    proxy = stdlib.honeypot_proxy("HP", b"\x01" * 20, ALICE)
    logic = stdlib.honeypot_logic()
    assert (proxy.function_by_name("impl_LUsXCWD2AKCc").selector
            == logic.function_by_name("free_ether_withdrawal").selector
            == bytes.fromhex("df4a3106"))


def test_audius_replay_takeover(chain: Blockchain) -> None:
    logic = _deploy(chain, stdlib.audius_logic())
    proxy = _deploy(chain, stdlib.audius_proxy("AP", logic, ALICE))
    assert chain.transact(BOB, proxy, encode_call("initialize()")).success
    # The collision keeps `initializing` truthy: replay succeeds and the
    # ownership moves again — the Audius takeover.
    assert chain.transact(CAROL, proxy, encode_call("initialize()")).success
    governance = chain.call(proxy, encode_call("governanceAddress()"))
    assert governance.output[-20:] == CAROL


def test_wyvern_pair_collides_on_interface() -> None:
    proxy = stdlib.ownable_delegate_proxy("ODP", b"\x01" * 20, ALICE)
    logic = stdlib.wyvern_logic()
    shared = set(proxy.selectors) & set(logic.selectors)
    assert len(shared) == 3  # proxyType, implementation, upgradeabilityOwner


def test_token_transfer_and_overdraw(chain: Blockchain) -> None:
    token = _deploy(chain, stdlib.simple_token("T", ALICE))
    assert chain.transact(
        ALICE, token, encode_call("transfer(address,uint256)", [BOB, 400])
    ).success
    balance = chain.call(token, encode_call("balanceOf(address)", [BOB]))
    assert int.from_bytes(balance.output, "big") == 400
    assert not chain.transact(
        BOB, token, encode_call("transfer(address,uint256)", [CAROL, 401])
    ).success


def test_wallet_withdraw_guard(chain: Blockchain) -> None:
    wallet = _wallet(chain)
    chain.fund(wallet, 10 * ETHER)
    assert not chain.transact(BOB, wallet,
                              encode_call("withdraw(uint256)", [1])).success
    bob_before = chain.state.get_balance(ALICE)
    assert chain.transact(ALICE, wallet,
                          encode_call("withdraw(uint256)", [ETHER])).success
    assert chain.state.get_balance(ALICE) == bob_before + ETHER


def test_weird_runtime_deploys(chain: Blockchain) -> None:
    address = _deploy(chain, stdlib.raw_deploy_init(
        stdlib.WEIRD_DELEGATECALL_RUNTIME))
    assert chain.state.get_code(address) == stdlib.WEIRD_DELEGATECALL_RUNTIME
    assert not chain.call(address, b"\x00").success
