"""The block-dependent timelock vault pattern."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.lang import compile_contract, stdlib
from repro.utils import encode_call

from tests.conftest import ALICE, BOB, ETHER


def _deploy(chain: Blockchain, delay: int = 1000) -> bytes:
    receipt = chain.deploy(ALICE, compile_contract(
        stdlib.timelock_vault("Vault", ALICE, unlock_delay=delay)).init_code)
    assert receipt.success
    chain.fund(receipt.created_address, 10 * ETHER)
    return receipt.created_address


def test_current_block_tracks_chain(chain: Blockchain) -> None:
    vault = _deploy(chain)
    result = chain.call(vault, encode_call("currentBlock()"))
    assert int.from_bytes(result.output, "big") == chain.latest_block_number


def test_withdraw_blocked_until_unlock(chain: Blockchain) -> None:
    vault = _deploy(chain, delay=5000)
    assert chain.transact(ALICE, vault, encode_call("lockUntilDelay()")).success
    # Too early: the height gate rejects.
    assert not chain.transact(ALICE, vault, encode_call("withdrawAll()")).success
    chain.advance_to_block(chain.latest_block_number + 5001)
    balance_before = chain.state.get_balance(ALICE)
    assert chain.transact(ALICE, vault, encode_call("withdrawAll()")).success
    assert chain.state.get_balance(ALICE) == balance_before + 10 * ETHER


def test_only_owner_operates(chain: Blockchain) -> None:
    vault = _deploy(chain)
    assert not chain.transact(BOB, vault, encode_call("lockUntilDelay()")).success
    assert not chain.transact(BOB, vault, encode_call("withdrawAll()")).success


def test_unlock_height_stored(chain: Blockchain) -> None:
    vault = _deploy(chain, delay=777)
    receipt = chain.transact(ALICE, vault, encode_call("lockUntilDelay()"))
    result = chain.call(vault, encode_call("unlocksAt()"))
    assert int.from_bytes(result.output, "big") == receipt.block_number + 777


def test_source_renders_block_number(chain: Blockchain) -> None:
    from repro.lang import render_source
    text = render_source(stdlib.timelock_vault("V", ALICE))
    assert "block.number" in text
    assert "require((block.number >= unlockBlock));" in text
