"""Type parsing and Solidity storage-packing rules."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang.storage_layout import (
    EIP1822_PROXIABLE_SLOT,
    EIP1967_ADMIN_SLOT,
    EIP1967_IMPLEMENTATION_SLOT,
    compute_layout,
    mapping_element_slot,
)
from repro.lang.types import MappingType, parse_type, types_compatible


def test_parse_elementary_types() -> None:
    assert parse_type("bool").size == 1
    assert parse_type("address").size == 20
    assert parse_type("uint256").size == 32
    assert parse_type("uint8").size == 1
    assert parse_type("uint48").size == 6
    assert parse_type("int128").size == 16
    assert parse_type("int128").is_signed
    assert parse_type("bytes4").size == 4
    assert parse_type("bytes32").size == 32


def test_parse_mapping() -> None:
    mapping = parse_type("mapping(address=>uint256)")
    assert isinstance(mapping, MappingType)
    assert mapping.key_type.name == "address"
    assert mapping.value_type.name == "uint256"
    assert parse_type("mapping(address => uint256)") == mapping  # spaces ok


def test_parse_rejects_bad_types() -> None:
    for bad in ("uint7", "uint264", "bytes0", "bytes33", "int0", "float",
                "mapping(address=>mapping(address=>uint256))"):
        with pytest.raises(ValueError):
            parse_type(bad)


def test_types_compatible_requires_same_name() -> None:
    assert types_compatible("address", "address")
    assert not types_compatible("address", "bytes20")
    assert not types_compatible("bool", "uint8")


def test_packing_listing2_layout() -> None:
    """The paper's Listing 2: two bools pack into slot 0."""
    layout = compute_layout([("initialized", "bool"), ("initializing", "bool")])
    first, second = layout.assignments
    assert (first.slot, first.offset, first.size) == (0, 0, 1)
    assert (second.slot, second.offset, second.size) == (0, 1, 1)


def test_two_addresses_do_not_pack() -> None:
    layout = compute_layout([("owner", "address"), ("logic", "address")])
    assert layout.get("owner").slot == 0
    assert layout.get("logic").slot == 1


def test_partial_packing() -> None:
    # bool(1) + address(20) = 21 bytes → pack; + uint256 → new slot.
    layout = compute_layout([
        ("flag", "bool"), ("owner", "address"), ("total", "uint256")])
    assert layout.get("flag").slot == 0
    assert (layout.get("owner").slot, layout.get("owner").offset) == (0, 1)
    assert layout.get("total").slot == 1


def test_exact_fill_advances_slot() -> None:
    layout = compute_layout([
        ("a", "uint128"), ("b", "uint128"), ("c", "bool")])
    assert layout.get("a").slot == 0 and layout.get("a").offset == 0
    assert layout.get("b").slot == 0 and layout.get("b").offset == 16
    assert layout.get("c").slot == 1


def test_mapping_takes_whole_slot() -> None:
    layout = compute_layout([
        ("flag", "bool"), ("balances", "mapping(address=>uint256)"),
        ("after_map", "bool")])
    assert layout.get("flag").slot == 0
    assert layout.get("balances").slot == 1
    assert layout.get("balances").is_mapping
    assert layout.get("after_map").slot == 2


def test_fixed_slots() -> None:
    layout = compute_layout(
        [("x", "uint256")],
        fixed_slots=[("impl", "address", EIP1967_IMPLEMENTATION_SLOT)])
    impl = layout.get("impl")
    assert impl.slot == EIP1967_IMPLEMENTATION_SLOT
    assert impl.is_fixed_slot
    assert layout.next_free_slot == 1  # fixed slots don't advance the cursor


def test_overlap_detection() -> None:
    layout = compute_layout([("a", "bool"), ("b", "bool"), ("c", "address")])
    a, b, c = layout.assignments
    assert not a.overlaps(b)
    assert not b.overlaps(c)
    full = compute_layout([("owner", "address")]).get("owner")
    assert full.overlaps(a)
    assert full.overlaps(b)


def test_eip_slot_constants() -> None:
    assert hex(EIP1967_IMPLEMENTATION_SLOT) == (
        "0x360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc")
    assert hex(EIP1967_ADMIN_SLOT) == (
        "0xb53127684a568b3173ae13b9f8a6016e243e63b6e8ee1178d6a717850b5d6103")
    # EIP-1822: keccak256("PROXIABLE")
    assert hex(EIP1822_PROXIABLE_SLOT) == (
        "0xc5f16f0fcc639fa48a6947836d9850f504798523bf8c9a3a87d5876cf622bcf7")


def test_mapping_element_slot_is_keccak() -> None:
    from repro.utils.keccak import keccak256
    key, marker = 7, 2
    expected = int.from_bytes(
        keccak256(key.to_bytes(32, "big") + marker.to_bytes(32, "big")), "big")
    assert mapping_element_slot(key, marker) == expected


_TYPE_NAMES = st.sampled_from(
    ["bool", "address", "uint8", "uint16", "uint32", "uint64",
     "uint128", "uint256", "bytes4", "bytes32"])


@given(st.lists(_TYPE_NAMES, min_size=1, max_size=12))
def test_layout_never_overlaps_and_is_ordered(type_names: list[str]) -> None:
    declarations = [(f"v{i}", name) for i, name in enumerate(type_names)]
    layout = compute_layout(declarations)
    assignments = layout.assignments
    # No two variables overlap.
    for i, first in enumerate(assignments):
        for second in assignments[i + 1:]:
            assert not first.overlaps(second)
    # Slots are assigned in non-decreasing declaration order.
    slots = [a.slot for a in assignments]
    assert slots == sorted(slots)
    # Every variable fits inside its slot.
    for assignment in assignments:
        assert assignment.offset + assignment.size <= 32


@given(st.lists(_TYPE_NAMES, min_size=1, max_size=12))
def test_layout_is_deterministic(type_names: list[str]) -> None:
    declarations = [(f"v{i}", name) for i, name in enumerate(type_names)]
    first = compute_layout(declarations)
    second = compute_layout(declarations)
    assert [
        (a.slot, a.offset, a.size) for a in first.assignments
    ] == [(a.slot, a.offset, a.size) for a in second.assignments]
