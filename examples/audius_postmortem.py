"""The Audius governance takeover (Listing 2), replayed and detected.

The proxy keeps ``owner`` in storage slot 0.  The logic contract's
``initialized``/``initializing`` flags *also* live in slot 0 — and its
``owner = msg.sender`` write clobbers the flag bytes with address bytes, so
``initializing`` reads true forever and ``initialize()`` can be replayed by
anyone to seize governance.  This is the $1.1M Audius incident (§2.3).

The script replays the attack, then runs ProxioN's CRUSH-style storage
analysis — slicing the bytecode, inferring the slot layouts, spotting the
byte-range mismatch, synthesizing the exploit transaction and verifying it
on an overlay of the live state.

Run:  python examples/audius_postmortem.py
"""

from repro.chain import Blockchain
from repro.core import StorageCollisionDetector
from repro.core.symexec import SymbolicExecutor
from repro.lang import compile_contract, stdlib
from repro.utils import encode_call

GOVERNANCE = bytes.fromhex("000000000000000000000000000000000000901e")
ATTACKER = bytes.fromhex("00000000000000000000000000000000000bad00")


def main() -> None:
    chain = Blockchain()
    chain.fund(GOVERNANCE, 10 ** 20)
    chain.fund(ATTACKER, 10 ** 20)

    logic = chain.deploy(GOVERNANCE, compile_contract(
        stdlib.audius_logic()).init_code).created_address
    proxy = chain.deploy(GOVERNANCE, compile_contract(
        stdlib.audius_proxy("AudiusGovernance", logic, GOVERNANCE)
    ).init_code).created_address

    print(f"proxy slot 0 (owner):  0x{chain.state.get_storage(proxy, 0):040x}")

    # --- the attack ---------------------------------------------------------
    receipt = chain.transact(ATTACKER, proxy, encode_call("initialize()"))
    print(f"\nattacker calls initialize(): success={receipt.success}")
    owner = chain.call(proxy, encode_call("governanceAddress()"))
    print(f"governance address now:  0x{owner.output[-20:].hex()}")
    print(f"(the attacker is         0x{ATTACKER.hex()})")
    replay = chain.transact(ATTACKER, proxy, encode_call("initialize()"))
    print(f"replaying initialize():  success={replay.success} — the flags "
          f"can never latch because owner bytes overwrite them")

    # --- what the analyzer sees ----------------------------------------------
    print("\n--- ProxioN storage analysis (bytecode only) ---")
    logic_summary = SymbolicExecutor().summarize(chain.state.get_code(logic))
    for access in logic_summary.semantic_accesses():
        print(f"  logic {access.kind:5s} {access.slot} "
              f"bytes[{access.offset}:{access.offset + access.size}]")

    detector = StorageCollisionDetector(None, chain.state,
                                        chain.block_context())
    report = detector.detect(chain.state.get_code(proxy),
                             chain.state.get_code(logic), proxy, logic)
    for collision in report.collisions:
        print(f"  COLLISION {collision.slot}: proxy "
              f"bytes[{collision.proxy_use.offset}:{collision.proxy_use.end}] "
              f"vs logic "
              f"bytes[{collision.logic_use.offset}:{collision.logic_use.end}] "
              f"({collision.kind})")
        if collision.verified:
            print(f"  exploit VERIFIED: calling selector "
                  f"0x{collision.exploit_selector.hex()} through the proxy "
                  f"rewrites the owner slot")
    assert report.has_verified_exploit


if __name__ == "__main__":
    main()
