"""Quickstart: detect a hidden proxy and its collisions in ~40 lines.

Builds a tiny simulated chain, deploys a proxy/logic pair with *no verified
source and no transactions* (the "hidden" class prior tools cannot see),
and runs the full ProxioN analysis on it.

Run:  python examples/quickstart.py
"""

from repro.chain import ArchiveNode, Blockchain, ContractDataset, SourceRegistry
from repro.core import Proxion
from repro.lang import compile_contract, stdlib

DEPLOYER = bytes.fromhex("00000000000000000000000000000000deadbeef")


def main() -> None:
    # 1. A fresh simulated chain with a funded deployer.
    chain = Blockchain()
    chain.fund(DEPLOYER, 10 ** 21)
    dataset = ContractDataset()

    # 2. Deploy a logic contract and a (vulnerable) proxy in front of it.
    #    Nothing is verified on the explorer and nobody has transacted with
    #    the proxy: it is exactly the hidden contract of the paper's title.
    logic = chain.deploy(
        DEPLOYER, compile_contract(stdlib.audius_logic()).init_code)
    proxy = chain.deploy(
        DEPLOYER,
        compile_contract(stdlib.audius_proxy(
            "GovernanceProxy", logic.created_address, DEPLOYER)).init_code)
    for receipt in (logic, proxy):
        dataset.add(receipt.created_address, receipt.block_number, DEPLOYER)

    # 3. Point ProxioN at the chain's archive node and analyze.
    proxion = Proxion(ArchiveNode(chain), registry=SourceRegistry(), dataset=dataset)
    analysis = proxion.analyze_contract(proxy.created_address)

    print(f"contract:        0x{proxy.created_address.hex()}")
    print(f"hidden:          {analysis.is_hidden} "
          f"(no source, no transactions)")
    print(f"is proxy:        {analysis.is_proxy}")
    print(f"standard:        {analysis.standard.value}")
    print(f"logic contracts: "
          f"{['0x' + a.hex() for a in analysis.logic_history.logic_addresses]}")
    print(f"logic slot:      {analysis.check.logic_slot}")
    for report in analysis.storage_reports:
        for collision in report.collisions:
            print(f"storage collision at {collision.slot}: proxy bytes "
                  f"[{collision.proxy_use.offset}:{collision.proxy_use.end}] "
                  f"vs logic bytes "
                  f"[{collision.logic_use.offset}:{collision.logic_use.end}] "
                  f"— exploitable={collision.exploitable}, "
                  f"verified={collision.verified}")

    assert analysis.is_proxy and analysis.has_verified_storage_exploit
    print("\nProxioN found and VERIFIED the storage collision on a contract "
          "no source- or transaction-based tool could even see.")


if __name__ == "__main__":
    main()
