"""ProxioN as a live protective monitor.

Simulates a chain where deployments arrive block by block — benign apps,
clone factories, and eventually the Listing-1 honeypot and a Listing-2
governance proxy — with a :class:`DeploymentMonitor` polling after each
batch, exactly how a protection service would run against a real node.

Run:  python examples/live_monitor.py
"""

from repro.chain import ArchiveNode, Blockchain, ContractDataset, SourceRegistry
from repro.core import Proxion
from repro.core.monitor import DeploymentMonitor
from repro.lang import compile_contract, stdlib

ETHER = 10 ** 18
DEV = bytes.fromhex("00000000000000000000000000000000000d0dd5")
SCAMMER = bytes.fromhex("0000000000000000000000000000000000baadf0")


def main() -> None:
    chain = Blockchain()
    chain.fund(DEV, 10 ** 6 * ETHER)
    chain.fund(SCAMMER, 10 ** 6 * ETHER)
    proxion = Proxion(ArchiveNode(chain), registry=SourceRegistry(), dataset=ContractDataset())
    monitor = DeploymentMonitor(proxion)

    def deploy(who: bytes, contract_or_init) -> bytes:
        init = (contract_or_init if isinstance(contract_or_init, bytes)
                else compile_contract(contract_or_init).init_code)
        return chain.deploy(who, init).created_address

    def drain(label: str) -> None:
        alerts = monitor.poll()
        print(f"--- poll after {label}: {len(alerts)} alert(s)")
        for alert in alerts:
            print(f"    {alert}")

    print("epoch 1: a benign app and its minimal clones arrive")
    app = deploy(DEV, stdlib.simple_wallet("App", DEV))
    for _ in range(3):
        deploy(DEV, stdlib.minimal_proxy_init(app))
    drain("benign deployments")

    print("\nepoch 2: an upgradeable proxy without published source")
    deploy(DEV, stdlib.eip1967_proxy("UnverifiedApp", app, DEV))
    drain("the unverified proxy")

    print("\nepoch 3: the scammer deploys the Listing-1 honeypot")
    bait = deploy(SCAMMER, stdlib.honeypot_logic())
    pot = deploy(SCAMMER, stdlib.honeypot_proxy("FreeEth", bait, SCAMMER))
    chain.fund(pot, 25 * ETHER)
    drain("the honeypot pair")

    print("\nepoch 4: a governance proxy with the Audius layout bug")
    gov_logic = deploy(DEV, stdlib.audius_logic())
    deploy(DEV, stdlib.audius_proxy("Governance", gov_logic, DEV))
    drain("the governance deployment")

    stats = monitor.stats
    print(f"\nlifetime: {stats.contracts_seen} contracts watched, "
          f"{stats.proxies_seen} proxies, {len(stats.alerts)} alerts")
    kinds = sorted({alert.kind for alert in stats.alerts})
    print(f"alert kinds raised: {', '.join(kinds)}")
    assert "honeypot" in kinds and "verified-exploit" in kinds


if __name__ == "__main__":
    main()
