"""Archive-node forensics on an upgradeable proxy's lifetime.

Builds an EIP-1967 proxy that is upgraded three times across simulated
years, then reconstructs its history through all three independent lenses
the library provides:

1. **Algorithm 1** (§4.3) — storage-slot binary search, counting RPC calls;
2. **exact change points** — the reuse-proof variant;
3. **Upgraded(address) event logs** — cheap but blind to the initial
   implementation and to non-emitting proxies;

and finally replays a *historical* ``eth_call`` against a block in the
middle of the timeline to show the archive substrate answering "what would
this contract have said back then?".

Run:  python examples/archive_forensics.py
"""

from repro.chain import ArchiveNode, Blockchain
from repro.core import algorithm1_values, slot_change_points
from repro.core.logic_finder import history_from_events
from repro.lang import compile_contract, stdlib
from repro.lang.storage_layout import EIP1967_IMPLEMENTATION_SLOT
from repro.utils import encode_call
from repro.utils.hexutil import word_to_address

ADMIN = bytes.fromhex("000000000000000000000000000000000000ad31")


def main() -> None:
    chain = Blockchain()
    chain.fund(ADMIN, 10 ** 21)

    versions = []
    for tag in ("V1", "V2", "V3", "V4"):
        receipt = chain.deploy(ADMIN, compile_contract(
            stdlib.simple_wallet(f"Logic{tag}", ADMIN)).init_code)
        versions.append(receipt.created_address)

    proxy = chain.deploy(ADMIN, compile_contract(
        stdlib.eip1967_proxy("UpgradeableApp", versions[0], ADMIN)
    ).init_code).created_address
    upgrade_blocks = []
    for logic in versions[1:]:
        chain.advance_to_block(chain.latest_block_number + 2_000_000)
        receipt = chain.transact(ADMIN, proxy,
                                 encode_call("upgradeTo(address)", [logic]))
        upgrade_blocks.append(receipt.block_number)
    chain.advance_to_block(chain.latest_block_number + 2_000_000)

    node = ArchiveNode(chain)
    height = node.latest_block_number
    print(f"proxy 0x{proxy.hex()} — {len(versions)} logic versions over "
          f"{height:,} blocks\n")

    # Lens 1: Algorithm 1.
    node.api_calls.reset()
    values = algorithm1_values(node, proxy, EIP1967_IMPLEMENTATION_SLOT)
    calls = node.api_calls.get("eth_getStorageAt")
    print(f"Algorithm 1:      {len(values - {0})} distinct implementations "
          f"recovered with {calls} getStorageAt calls "
          f"(naive scan: {height:,})")

    # Lens 2: exact change points.
    changes = slot_change_points(node, proxy, EIP1967_IMPLEMENTATION_SLOT)
    print("change points:    " + " -> ".join(
        f"0x{word_to_address(value).hex()[:8]}@{block}"
        for block, value in changes))

    # Lens 3: event logs.
    events = history_from_events(node, proxy)
    print(f"Upgraded events:  {len(events)} upgrades "
          f"(the constructor-set V1 is invisible to logs)")

    # Historical eth_call: what implementation was live mid-history?
    midpoint = upgrade_blocks[0] + 100
    then = node.get_storage_at(proxy, EIP1967_IMPLEMENTATION_SLOT, midpoint)
    now = node.get_storage_at(proxy, EIP1967_IMPLEMENTATION_SLOT)
    print(f"\nat block {midpoint:,}: implementation was "
          f"0x{word_to_address(then).hex()[:8]}…; today it is "
          f"0x{word_to_address(now).hex()[:8]}…")
    historical = node.call(word_to_address(then), encode_call("ownerOf()"),
                           block_number=midpoint)
    print(f"historical eth_call into the then-implementation: "
          f"owner=0x{historical.output[-20:].hex()[:8]}… "
          f"(success={historical.success})")

    assert {word_to_address(value) for value in values if value} == set(versions)
    assert [logic for _, logic in events] == versions[1:]


if __name__ == "__main__":
    main()
