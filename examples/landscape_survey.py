"""Survey a synthetic Ethereum landscape, §7 style.

Generates a paper-calibrated population (standards mix, clone skew, source
and transaction availability, collision families), sweeps it with ProxioN
and prints the §7 findings: proxy share, hidden contracts, standards
census, duplicates, collisions per year, upgrade rarity — and what every
baseline tool would have missed.

Run:  python examples/landscape_survey.py  [total_contracts]
"""

import sys

from repro.baselines.crush import Crush
from repro.baselines.uschunt import USCHunt
from repro.core import Proxion
from repro.corpus import generate_landscape
from repro.landscape import (
    figure2_accumulated_contracts,
    figure5_duplicates,
    figure6_upgrades,
    table3_collisions_by_year,
    table4_standards,
)


def main() -> None:
    total = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    print(f"generating a {total}-contract landscape (2015–2023)...")
    landscape = generate_landscape(total=total, seed=7)

    proxion = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset)
    report = proxion.analyze_all()

    alive = len(report)
    proxies = report.proxies()
    hidden = report.hidden_proxies()
    print(f"\nalive contracts analyzed: {alive} "
          f"(emulation failures: {report.emulation_failure_rate():.1%})")
    print(f"proxy contracts:          {len(proxies)} "
          f"({len(proxies) / alive:.1%}; paper: 54.2%)")
    print(f"hidden proxies:           {len(hidden)} — "
          f"no source, no transactions; only ProxioN sees these")

    print("\nstandards census (Table 4):")
    for standard, (count, share) in table4_standards(report).items():
        print(f"  {standard:10s} {count:>5d}  {share:6.2%}")

    duplicates = figure5_duplicates(report, landscape.node)
    print(f"\nduplicates (Figure 5): {duplicates.unique_proxies} unique proxy "
          f"bytecodes across {duplicates.total_proxies} proxies; top-3 "
          f"families hold {duplicates.top_proxy_share(3):.1%}")

    collisions = table3_collisions_by_year(report)
    print("\ncollisions by year (Table 3):")
    for year in range(2015, 2024):
        function_count = collisions.function_by_year[year]
        storage_count = collisions.storage_by_year[year]
        if function_count or storage_count:
            print(f"  {year}: {function_count} function, "
                  f"{storage_count} storage")
    print(f"  duplicate share of function collisions: "
          f"{collisions.duplicate_share:.1%} (paper: 98.7%)")

    upgrades = figure6_upgrades(report)
    print(f"\nupgrades (Figure 6): {upgrades.never_upgraded_share:.1%} of "
          f"proxies never upgraded (paper: 99.7%)")

    growth = figure2_accumulated_contracts(report)
    print("\ncumulative contracts by year (Figure 2):")
    for year in (2017, 2020, 2023):
        row = growth[year]
        print(f"  {year}: total {sum(row.values()):>5d}  (hidden {row['hidden']})")

    print("\n--- what the baselines see ---")
    crush = Crush(landscape.node).mine_pairs(landscape.addresses())
    uschunt = USCHunt(landscape.node, landscape.registry)
    uschunt_found = uschunt.find_proxies(landscape.addresses())
    print(f"CRUSH (tx mining):      {len(crush.proxies)} proxies "
          f"(+ library-call false positives)")
    print(f"USCHunt (source-only):  {len(uschunt_found)} proxies "
          f"({uschunt.halt_count} compile halts)")
    print(f"ProxioN:                {len(proxies)} proxies")


if __name__ == "__main__":
    main()
