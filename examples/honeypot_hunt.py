"""The Listing-1 honeypot, end to end.

An attacker deploys a logic contract advertising ``free_ether_withdrawal()``
(pays the caller 10 ETH) behind a proxy whose ``impl_LUsXCWD2AKCc()``
shares the same 4-byte selector ``0xdf4a3106`` — so the proxy's *stealing*
body runs instead of the logic's generous one.

The script (1) shows a victim losing funds to the trap, then (2) shows
ProxioN exposing the function collision from bytecode alone — the attacker
published no source, so source-based tools are blind here.

Run:  python examples/honeypot_hunt.py
"""

from repro.chain import Blockchain
from repro.core import FunctionCollisionDetector, ProxyDetector
from repro.lang import compile_contract, stdlib
from repro.utils import encode_call

ETHER = 10 ** 18
ATTACKER = bytes.fromhex("00000000000000000000000000000000000aace7")
VICTIM = bytes.fromhex("000000000000000000000000000000000000c1a0")


def main() -> None:
    chain = Blockchain()
    chain.fund(ATTACKER, 100 * ETHER)
    chain.fund(VICTIM, 10 * ETHER)

    # --- the trap ---------------------------------------------------------
    logic = chain.deploy(ATTACKER, compile_contract(
        stdlib.honeypot_logic()).init_code).created_address
    pot = chain.deploy(ATTACKER, compile_contract(
        stdlib.honeypot_proxy("Honeypot", logic, ATTACKER)
    ).init_code).created_address
    chain.fund(pot, 50 * ETHER)  # the visible bait

    print("The bait: free_ether_withdrawal() in the logic contract pays the")
    print("caller 10 ETH... if it ever ran.\n")

    # --- the victim bites --------------------------------------------------
    victim_before = chain.state.get_balance(VICTIM)
    attacker_before = chain.state.get_balance(ATTACKER)
    receipt = chain.transact(VICTIM, pot,
                             encode_call("free_ether_withdrawal()"),
                             value=1 * ETHER)
    print(f"victim calls free_ether_withdrawal() with 1 ETH attached: "
          f"success={receipt.success}")
    print(f"victim balance change:   "
          f"{(chain.state.get_balance(VICTIM) - victim_before) / ETHER:+.2f} ETH")
    print(f"attacker balance change: "
          f"{(chain.state.get_balance(ATTACKER) - attacker_before) / ETHER:+.2f} ETH")
    print("The selector collision routed the call into the proxy's own "
          "stealing function.\n")

    # --- ProxioN sees it without any source --------------------------------
    detector = ProxyDetector(chain.state, chain.block_context())
    check = detector.check(pot)
    print(f"ProxioN proxy check: is_proxy={check.is_proxy}, "
          f"logic=0x{check.logic_address.hex()}")

    collisions = FunctionCollisionDetector().detect(
        chain.state.get_code(pot), chain.state.get_code(logic))
    print(f"function collisions (bytecode mode): "
          f"{[c.selector.hex() for c in collisions.collisions]}")
    assert collisions.collisions[0].selector == bytes.fromhex("df4a3106")
    print("\n0xdf4a3106 = keccak('impl_LUsXCWD2AKCc()')[:4] "
          "= keccak('free_ether_withdrawal()')[:4]")
    print("ProxioN flags the honeypot before anyone else has to lose funds.")


if __name__ == "__main__":
    main()
