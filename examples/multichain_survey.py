"""Beyond Ethereum (§8.2): survey several EVM chains with one analyzer.

Nothing in ProxioN is Ethereum-specific — the proxy pattern is an EVM
pattern — so running on Polygon/BSC/Arbitrum-style chains only changes the
chain parameters (chain id, block cadence, genesis date).  This example
generates a landscape per chain profile and sweeps each with the same
pipeline, like USCHunt's eight-chain study.

Run:  python examples/multichain_survey.py
"""

from repro.chain.profiles import ARBITRUM, BSC, ETHEREUM, POLYGON
from repro.core import Proxion
from repro.corpus import generate_landscape


def main() -> None:
    print(f"{'chain':10s} {'id':>6s} {'contracts':>9s} {'proxies':>8s} "
          f"{'hidden':>7s} {'fn-col':>7s} {'st-col':>7s}")
    for profile in (ETHEREUM, POLYGON, BSC, ARBITRUM):
        landscape = generate_landscape(
            total=150, seed=profile.chain_id, chain_profile=profile)
        proxion = Proxion(landscape.node, registry=landscape.registry,
                          dataset=landscape.dataset)
        report = proxion.analyze_all()
        print(f"{profile.name:10s} {profile.chain_id:>6d} "
              f"{len(report):>9d} {len(report.proxies()):>8d} "
              f"{len(report.hidden_proxies()):>7d} "
              f"{report.function_collision_pairs():>7d} "
              f"{report.storage_collision_pairs():>7d}")
    print("\nSame analyzer, four chains: the paper's §8.2 extension.")


if __name__ == "__main__":
    main()
